//! Resumable, panic-isolated shard execution.
//!
//! Long campaigns (hundreds of faults × three test tiers, multi-chain
//! PPSFP sweeps) need to survive two kinds of trouble the plain
//! [`crate::par`] map does not: a worker panicking mid-run, and the
//! process dying before the run completes. This module supplies both
//! defenses while preserving the workspace determinism contract:
//!
//! * **Shard planning** ([`plan`], [`plan_segmented`]) — the work is cut
//!   into fixed-size shards keyed by item range and an RNG substream
//!   seed. The plan is a function of the *problem size only*, never of
//!   the thread count, so records concatenated in shard order are
//!   byte-identical at any parallelism.
//! * **Checkpointing** ([`Checkpoint`], [`encode_checkpoint`],
//!   [`decode_checkpoint`]) — each completed shard's records are
//!   appended to a versioned, length-prefixed binary file with a CRC32
//!   per frame. A re-run with the same fingerprint resumes from the
//!   longest valid prefix; a truncated or corrupted tail is discarded,
//!   never trusted.
//! * **Panic isolation** ([`run_shards`]) — every shard attempt runs
//!   under [`crate::obs::quarantine`]: a panic is caught, the attempt's
//!   partial telemetry is discarded (so retried runs stay byte-identical
//!   to untroubled ones), and the shard is retried up to a bounded
//!   budget with exponential backoff in **deterministic virtual time**
//!   ([`RetryPolicy`]). A shard that exhausts its budget degrades the
//!   run to a partial [`ExecReport`] carrying an explicit
//!   [`ShardFailure`] manifest instead of aborting the process.
//! * **Fault injection** ([`Sabotage`]) — a seeded chaos knob that
//!   panics a chosen shard a chosen number of times, used by the
//!   conformance suite to prove the recovery machinery end to end.
//!
//! # Examples
//!
//! ```
//! use rt::exec::{plan, run_shards, RetryPolicy, Shard, ShardJob};
//!
//! struct Doubler;
//! impl ShardJob for Doubler {
//!     type Record = u64;
//!     fn run(&self, shard: &Shard) -> Vec<u64> {
//!         (shard.start..shard.start + shard.len).map(|i| 2 * i as u64).collect()
//!     }
//! }
//!
//! let shards = plan(10, 4, 7);
//! let report = run_shards(2, &RetryPolicy::none(), None, &shards, &Doubler);
//! assert!(report.is_complete());
//! assert_eq!(report.records, (0..10).map(|i| 2 * i).collect::<Vec<u64>>());
//! ```

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::rng::Rng;

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

/// One deterministic unit of campaign work: a contiguous item range plus
/// the RNG substream seed any randomized work inside the shard must use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in the plan (also the checkpoint frame key).
    pub index: usize,
    /// First item covered by this shard.
    pub start: usize,
    /// Number of items covered.
    pub len: usize,
    /// Decorrelated substream seed for randomized shard work, derived
    /// from the plan's base seed and the shard index only.
    pub seed: u64,
}

impl Shard {
    /// The half-open item range `[start, start + len)`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

fn shard_seed(base_seed: u64, index: usize) -> u64 {
    // One draw from the substream keyed by the shard index; decorrelated
    // exactly like the fixed-chunk Monte-Carlo loops.
    Rng::seed_from_stream(base_seed, index as u64).next_u64()
}

/// Cuts `total` items into shards of at most `shard_size` items. The cut
/// points depend on `total` and `shard_size` only — never on the thread
/// count — so a plan is reproducible across machines and runs.
///
/// # Panics
///
/// Panics if `shard_size == 0`.
pub fn plan(total: usize, shard_size: usize, base_seed: u64) -> Vec<Shard> {
    plan_segmented(&[total], shard_size, base_seed)
}

/// Like [`plan`], but over several back-to-back segments (e.g. one per
/// scan chain): shards never straddle a segment boundary, so every shard
/// maps to exactly one segment. `start` offsets are global (cumulative
/// across segments), shard indices run plan-wide.
///
/// Zero-length segments are inert: they emit no (empty) shard and — since
/// every substream seed is keyed by the *emitted* shard index, not the
/// segment position — they do not shift the seeds of any shard after
/// them. `[0, n, 0, m]` plans identically to `[n, m]`.
///
/// # Panics
///
/// Panics if `shard_size == 0`.
pub fn plan_segmented(segments: &[usize], shard_size: usize, base_seed: u64) -> Vec<Shard> {
    assert!(shard_size > 0, "shard size must be positive");
    let mut shards = Vec::new();
    let mut offset = 0usize;
    for &seg in segments {
        let mut pos = 0usize;
        while pos < seg {
            let len = shard_size.min(seg - pos);
            let index = shards.len();
            shards.push(Shard {
                index,
                start: offset + pos,
                len,
                seed: shard_seed(base_seed, index),
            });
            pos += len;
        }
        offset += seg;
    }
    shards
}

/// Mixes an arbitrary list of identity words (universe size, seeds,
/// schema versions, …) into a single checkpoint fingerprint. Same parts,
/// same fingerprint — a resumed run must prove it is the same campaign.
///
/// The element count is folded into the accumulator before any part:
/// without it, a prefix-extended list `[a, b]` would collide with `[a]`
/// whenever `b` happens to map the running state back onto itself, and
/// two campaigns differing only in trailing identity words could then
/// trust each other's checkpoints. Seeding with the length makes the
/// whole chain differ between a list and any extension of it.
pub fn fingerprint(parts: &[u64]) -> u64 {
    // pi, nothing up the sleeve
    let mut acc = Rng::seed_from_stream(0x243F_6A88_85A3_08D3, parts.len() as u64).next_u64();
    for &p in parts {
        let mut rng = Rng::seed_from_stream(acc, p);
        acc = rng.next_u64();
    }
    acc
}

// ---------------------------------------------------------------------------
// CRC32 + checkpoint codec
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Checkpoint container magic (`RTCK`).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"RTCK";
/// Checkpoint container format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Header length in bytes: magic + version + fingerprint.
pub const HEADER_LEN: usize = 4 + 4 + 8;
/// Per-frame overhead in bytes: length prefix + shard index + record
/// count + trailing CRC32.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 4 + 4;
/// Largest encodable frame payload, in bytes.
///
/// The frame-size contract: a frame body is `8 + payload.len()` bytes
/// and its length prefix is a little-endian `u32`, so the payload must
/// not exceed `u32::MAX - 8` bytes. Encoding a larger payload is a
/// typed [`OversizedFrame`] error — never a silent `as u32` truncation,
/// which would write a self-consistent frame describing only a prefix
/// of the payload and let the CRC bless the corruption.
pub const MAX_FRAME_PAYLOAD: usize = u32::MAX as usize - 8;

/// Typed encoding error: a frame payload larger than
/// [`MAX_FRAME_PAYLOAD`] cannot be described by the `u32` length prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedFrame {
    /// The offending payload length, in bytes.
    pub payload_len: usize,
}

impl std::fmt::Display for OversizedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame payload of {} bytes exceeds the {} byte frame-size limit",
            self.payload_len, MAX_FRAME_PAYLOAD
        )
    }
}

impl std::error::Error for OversizedFrame {}

/// Checks `payload_len` against the frame-size contract
/// ([`MAX_FRAME_PAYLOAD`]) — the guard every encoding path runs before
/// writing a length prefix.
///
/// # Errors
///
/// Returns [`OversizedFrame`] when the payload cannot be described by
/// the `u32` length prefix.
pub fn check_frame_payload(payload_len: usize) -> Result<(), OversizedFrame> {
    if payload_len > MAX_FRAME_PAYLOAD {
        Err(OversizedFrame { payload_len })
    } else {
        Ok(())
    }
}

/// One checkpointed shard: the shard's plan index, how many records the
/// payload encodes, and the caller-defined payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Plan index of the completed shard.
    pub shard: u32,
    /// Number of records encoded in `payload`.
    pub records: u32,
    /// Caller-encoded record bytes (see [`ShardJob::encode`]).
    pub payload: Vec<u8>,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    Some(u32::from_le_bytes(bytes.get(at..end)?.try_into().ok()?))
}

fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), OversizedFrame> {
    // Body = shard index + record count + payload; the length prefix
    // covers the body, the CRC covers the body too (so a bit flip in
    // either the metadata or the payload invalidates the frame).
    check_frame_payload(frame.payload.len())?;
    let body_len = 8 + frame.payload.len();
    push_u32(out, body_len as u32);
    let body_start = out.len();
    push_u32(out, frame.shard);
    push_u32(out, frame.records);
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out[body_start..]);
    push_u32(out, crc);
    Ok(())
}

/// Serializes a whole checkpoint (header + frames) to bytes — the pure
/// codec the file-backed [`Checkpoint`] writes incrementally.
///
/// # Errors
///
/// Returns [`OversizedFrame`] if any frame's payload exceeds
/// [`MAX_FRAME_PAYLOAD`] (the frame-size contract).
pub fn encode_checkpoint(fp: u64, frames: &[Frame]) -> Result<Vec<u8>, OversizedFrame> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    push_u32(&mut out, CHECKPOINT_VERSION);
    out.extend_from_slice(&fp.to_le_bytes());
    for frame in frames {
        encode_frame(frame, &mut out)?;
    }
    Ok(out)
}

/// Result of decoding a checkpoint byte stream: the frames of the
/// longest valid prefix, the byte length of that prefix, and whether the
/// stream decoded cleanly to its end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Frames recovered from the valid prefix, in file order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (header + intact frames); a
    /// writer resuming an interrupted file truncates to this length.
    pub valid_len: usize,
    /// `true` when the stream ended exactly at a frame boundary with no
    /// corruption — `false` means a truncated or CRC-failing tail was
    /// discarded.
    pub clean: bool,
}

/// Decodes a checkpoint byte stream against an expected fingerprint.
///
/// A missing/garbled header or a fingerprint mismatch yields zero frames
/// with `valid_len == 0` (the file belongs to some other campaign and
/// must be rewritten from scratch). After a valid header, frames are
/// read until the first undecodable frame — truncated, CRC-corrupted,
/// or carrying a body too short to hold its shard index and record
/// count (a short body is rejected even when its CRC checks out: no
/// writer of this format produces one, so it marks a corrupted or
/// foreign tail, never a frame to panic over). Everything before the
/// first bad frame is trusted, everything from it on is discarded.
pub fn decode_checkpoint(bytes: &[u8], fp: u64) -> Decoded {
    let header_ok = bytes.len() >= HEADER_LEN
        && bytes[..4] == CHECKPOINT_MAGIC
        && read_u32(bytes, 4) == Some(CHECKPOINT_VERSION)
        && bytes[8..16] == fp.to_le_bytes();
    if !header_ok {
        return Decoded {
            frames: Vec::new(),
            valid_len: 0,
            clean: false,
        };
    }
    let mut frames = Vec::new();
    let mut at = HEADER_LEN;
    loop {
        if at == bytes.len() {
            return Decoded {
                frames,
                valid_len: at,
                clean: true,
            };
        }
        let Some(frame) = decode_frame(bytes, at) else {
            break; // truncated, short-body or CRC-corrupted tail
        };
        at += FRAME_OVERHEAD + frame.payload.len();
        frames.push(frame);
    }
    Decoded {
        frames,
        valid_len: at,
        clean: false,
    }
}

/// Decodes the frame starting at byte offset `at`, or `None` when the
/// bytes there do not hold a complete, CRC-valid frame with a body of
/// at least the 8 metadata bytes. Never panics: every field access is
/// bounds-checked, so a hostile or damaged stream degrades to a
/// rejected tail instead of a process abort.
fn decode_frame(bytes: &[u8], at: usize) -> Option<Frame> {
    let body_len = read_u32(bytes, at)? as usize;
    if body_len < 8 {
        return None; // a valid body holds at least shard + record count
    }
    let body_start = at + 4;
    let crc_at = body_start.checked_add(body_len)?;
    let body = bytes.get(body_start..crc_at)?;
    if read_u32(bytes, crc_at)? != crc32(body) {
        return None; // corrupted frame
    }
    Some(Frame {
        shard: read_u32(body, 0)?,
        records: read_u32(body, 4)?,
        payload: body[8..].to_vec(),
    })
}

/// A file-backed checkpoint: opened once per run, appended to after each
/// completed shard, resumed from on the next run with the same
/// fingerprint.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: fs::File,
    frames: Vec<Frame>,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path`, recovering every
    /// frame of its longest valid prefix into [`Checkpoint::frames`]. A
    /// file with a foreign or damaged header is rewritten from scratch;
    /// a valid file with a corrupted tail is truncated back to its
    /// longest valid prefix so subsequent appends extend trusted data
    /// only.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening, reading or truncating the
    /// file, or from creating its parent directory.
    pub fn open(path: impl Into<PathBuf>, fp: u64) -> io::Result<Checkpoint> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let decoded = decode_checkpoint(&bytes, fp);
        if decoded.valid_len == 0 {
            // Foreign or damaged header: start the file over.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let header = encode_checkpoint(fp, &[]).expect("a frameless checkpoint always fits");
            file.write_all(&header)?;
        } else if decoded.valid_len < bytes.len() {
            // Corrupted tail: drop it, keep the trusted prefix.
            file.set_len(decoded.valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Checkpoint {
            path,
            file,
            frames: decoded.frames,
        })
    }

    /// The file this checkpoint persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The frames recovered when the checkpoint was opened, in file
    /// order (appends made through this handle are not re-listed here).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Appends one completed shard's frame and flushes it to the OS, so
    /// a crash immediately after loses at most the shards still in
    /// flight.
    ///
    /// # Errors
    ///
    /// Returns an `InvalidInput` error wrapping [`OversizedFrame`] when
    /// the frame payload exceeds [`MAX_FRAME_PAYLOAD`], and any I/O
    /// error from the write or flush.
    pub fn append(&mut self, frame: &Frame) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(FRAME_OVERHEAD + frame.payload.len());
        encode_frame(frame, &mut bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.file.write_all(&bytes)?;
        self.file.flush()
    }
}

// ---------------------------------------------------------------------------
// Retry policy + fault injection
// ---------------------------------------------------------------------------

/// Bounded retry with exponential backoff in **virtual time**: backoff
/// is accounted in deterministic ticks (doubling per attempt, capped),
/// not wall-clock sleeps, so a retried run remains byte-identical and
/// fast while still exercising the scheduling arithmetic a production
/// deployment would map onto real delays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per shard after its first attempt.
    pub max_retries: u32,
    /// Backoff after the first failure, in virtual ticks.
    pub base_ticks: u64,
    /// Upper bound on a single backoff interval.
    pub max_ticks: u64,
}

impl RetryPolicy {
    /// No retries: a shard failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_ticks: 0,
            max_ticks: 0,
        }
    }

    /// Up to `n` retries with 1-tick base backoff doubling to a 64-tick
    /// cap.
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            base_ticks: 1,
            max_ticks: 64,
        }
    }

    /// Backoff before retry number `retry` (1-based), in virtual ticks:
    /// `base · 2^(retry−1)`, saturating, capped at `max_ticks`.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        if retry == 0 || self.base_ticks == 0 {
            return 0;
        }
        let doubled = self
            .base_ticks
            .saturating_mul(1u64.checked_shl(retry - 1).unwrap_or(u64::MAX));
        doubled.min(self.max_ticks)
    }
}

/// Deterministic fault injection: panics a chosen shard a chosen number
/// of times, then lets it through. Jobs call [`Sabotage::trip`] at the
/// top of their shard body; the conformance suite uses this to prove
/// that a worker panic is isolated, retried and recovered.
#[derive(Debug)]
pub struct Sabotage {
    shard: usize,
    remaining: AtomicU32,
}

impl Sabotage {
    /// Panics shard `shard` on its first attempt only.
    pub fn once(shard: usize) -> Sabotage {
        Sabotage::times(shard, 1)
    }

    /// Panics shard `shard` on its first `times` attempts.
    pub fn times(shard: usize, times: u32) -> Sabotage {
        Sabotage {
            shard,
            remaining: AtomicU32::new(times),
        }
    }

    /// Seeded mutant: derives the victim shard from `seed` over a plan
    /// of `shards` shards and arms it `times` times.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn seeded(seed: u64, shards: usize, times: u32) -> Sabotage {
        assert!(shards > 0, "cannot sabotage an empty plan");
        Sabotage::times(Rng::seed_from_u64(seed).below(shards), times)
    }

    /// The shard this sabotage targets.
    pub fn target(&self) -> usize {
        self.shard
    }

    /// Panics if this sabotage targets `shard` and still has charges
    /// left; otherwise does nothing. Call at the top of a shard body.
    pub fn trip(&self, shard: usize) {
        if shard != self.shard {
            return;
        }
        if self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("sabotage: injected panic in shard {shard}");
        }
    }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// A unit of campaign work the executor can run, checkpoint and resume.
///
/// `run` must be a pure function of the shard (plus the job's own
/// immutable state): the executor may invoke it on any thread, retry it
/// after a panic, or skip it entirely when the checkpoint already holds
/// its records. `encode`/`decode` round-trip the shard's records through
/// checkpoint payload bytes; the defaults disable persistence (every
/// frame decodes to `None` and is recomputed).
pub trait ShardJob: Sync {
    /// Per-item result record produced by a shard.
    type Record: Send;

    /// Computes the shard's records. May panic; the executor isolates
    /// and retries.
    fn run(&self, shard: &Shard) -> Vec<Self::Record>;

    /// Encodes `records` into checkpoint payload bytes. The default
    /// encodes nothing (pair with the default `decode`).
    fn encode(&self, _shard: &Shard, _records: &[Self::Record], _out: &mut Vec<u8>) {}

    /// Decodes a checkpoint payload back into records, or `None` when
    /// the payload is unusable (wrong length, unknown flags, …) — the
    /// shard is then recomputed. The default always recomputes.
    fn decode(&self, _shard: &Shard, _payload: &[u8]) -> Option<Vec<Self::Record>> {
        None
    }
}

/// A shard that exhausted its retry budget: the explicit manifest entry
/// a partial run carries instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Plan index of the failed shard.
    pub shard: usize,
    /// First item the shard covers.
    pub start: usize,
    /// Number of items the shard covers.
    pub len: usize,
    /// Attempts made (first try + retries).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
}

/// Deterministic, non-generic execution counters — comparable across
/// runs regardless of the record type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecSummary {
    /// Shards in the plan.
    pub planned: usize,
    /// Shards whose records made it into the report (computed or
    /// resumed).
    pub completed: usize,
    /// Shards restored from the checkpoint without recomputation.
    pub resumed: usize,
    /// Retry attempts across all shards.
    pub retried: usize,
    /// Shards that exhausted the retry budget.
    pub failed: usize,
    /// Virtual backoff time accumulated by retries, in ticks.
    pub backoff_ticks: u64,
}

/// The outcome of [`run_shards`]: completed records in shard order plus
/// the incompleteness manifest.
#[derive(Debug)]
pub struct ExecReport<R> {
    /// Records of every completed shard, concatenated in shard (= item)
    /// order. Failed shards contribute nothing; consult `incomplete`
    /// for the gaps.
    pub records: Vec<R>,
    /// Failed shards, in plan order. Empty iff the run is complete.
    pub incomplete: Vec<ShardFailure>,
    /// Execution counters.
    pub summary: ExecSummary,
}

impl<R> ExecReport<R> {
    /// `true` when every planned shard delivered records.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }
}

enum ShardState<R> {
    Pending { attempts: u32, last_error: String },
    Done { records: Vec<R>, resumed: bool },
    Failed { attempts: u32, message: String },
}

/// Runs `plan` through `job` on up to `threads` workers with panic
/// isolation, bounded retry and optional checkpoint resume.
///
/// Completed records come back concatenated in shard order —
/// byte-identical at any thread count, after any interrupt/resume cycle,
/// and after any number of recovered panics (a failed attempt's partial
/// telemetry is discarded wholesale). Checkpoint I/O errors never abort
/// the run: persistence degrades to in-memory execution and the error is
/// surfaced through the `exec.checkpoint.io_errors` counter and the
/// [`crate::obs::log`] warning stream.
///
/// # Panics
///
/// Panics if `threads == 0`. Worker panics do *not* propagate; they are
/// converted into retries and, past the budget, [`ShardFailure`]s.
pub fn run_shards<J: ShardJob>(
    threads: usize,
    retry: &RetryPolicy,
    mut checkpoint: Option<&mut Checkpoint>,
    plan: &[Shard],
    job: &J,
) -> ExecReport<J::Record> {
    assert!(threads > 0, "at least one worker thread is required");
    let _span = crate::obs::span("exec.run");
    let mut summary = ExecSummary {
        planned: plan.len(),
        ..ExecSummary::default()
    };
    crate::obs::count("exec.shards.planned", plan.len() as u64);

    let mut state: Vec<ShardState<J::Record>> = plan
        .iter()
        .map(|_| ShardState::Pending {
            attempts: 0,
            last_error: String::new(),
        })
        .collect();

    // Resume: trust every decodable checkpoint frame for a known shard.
    // Unknown shard indices, stale ranges and undecodable payloads are
    // skipped (the shard recomputes); later frames for the same shard
    // win, since an append-only file can hold both halves of an
    // interrupted retry.
    if let Some(ck) = checkpoint.as_deref_mut() {
        for frame in ck.frames() {
            let index = frame.shard as usize;
            let Some(shard) = plan.get(index) else {
                continue;
            };
            let Some(records) = job.decode(shard, &frame.payload) else {
                continue;
            };
            if records.len() != frame.records as usize {
                continue;
            }
            if !matches!(state[index], ShardState::Done { resumed: true, .. }) {
                summary.resumed += 1;
            }
            state[index] = ShardState::Done {
                records,
                resumed: true,
            };
        }
    }
    crate::obs::count("exec.shards.resumed", summary.resumed as u64);

    // Attempt waves: run every pending shard, retry failures with
    // deterministic virtual backoff until the budget is spent.
    loop {
        let pending: Vec<usize> = state
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ShardState::Pending { attempts, .. } if *attempts <= retry.max_retries => Some(i),
                _ => None,
            })
            .collect();
        if pending.is_empty() {
            break;
        }
        let outcomes = crate::par::parallel_map_with(threads.min(pending.len()), &pending, |&i| {
            crate::obs::quarantine(|| {
                let _span = crate::obs::span(format!("exec.shard.{}", plan[i].index));
                job.run(&plan[i])
            })
        });
        for (&i, outcome) in pending.iter().zip(outcomes) {
            let ShardState::Pending { attempts, .. } = &state[i] else {
                unreachable!("pending list only holds pending shards");
            };
            let attempts = attempts + 1;
            match outcome {
                Ok(records) => {
                    if let Some(ck) = checkpoint.as_deref_mut() {
                        persist(ck, job, &plan[i], &records);
                    }
                    state[i] = ShardState::Done {
                        records,
                        resumed: false,
                    };
                }
                Err(message) => {
                    crate::obs::log::info(
                        "exec",
                        format!("shard {i} attempt {attempts} panicked: {message}"),
                    );
                    if attempts > retry.max_retries {
                        state[i] = ShardState::Failed { attempts, message };
                    } else {
                        summary.retried += 1;
                        summary.backoff_ticks += retry.backoff_ticks(attempts);
                        state[i] = ShardState::Pending {
                            attempts,
                            last_error: message,
                        };
                    }
                }
            }
        }
    }

    // Assemble in shard order; pending shards past budget become failures.
    let mut records = Vec::new();
    let mut incomplete = Vec::new();
    for (shard, s) in plan.iter().zip(state) {
        match s {
            ShardState::Done { records: mut r, .. } => {
                summary.completed += 1;
                records.append(&mut r);
            }
            ShardState::Failed { attempts, message }
            | ShardState::Pending {
                attempts,
                last_error: message,
            } => {
                incomplete.push(ShardFailure {
                    shard: shard.index,
                    start: shard.start,
                    len: shard.len,
                    attempts,
                    message,
                });
            }
        }
    }
    summary.failed = incomplete.len();
    crate::obs::count("exec.shards.completed", summary.completed as u64);
    crate::obs::count("exec.shards.retried", summary.retried as u64);
    crate::obs::count("exec.shards.failed", summary.failed as u64);
    crate::obs::count("exec.backoff_ticks", summary.backoff_ticks);
    ExecReport {
        records,
        incomplete,
        summary,
    }
}

fn persist<J: ShardJob>(ck: &mut Checkpoint, job: &J, shard: &Shard, records: &[J::Record]) {
    let mut payload = Vec::new();
    job.encode(shard, records, &mut payload);
    let frame = Frame {
        shard: shard.index as u32,
        records: records.len() as u32,
        payload,
    };
    if let Err(e) = ck.append(&frame) {
        crate::obs::count("exec.checkpoint.io_errors", 1);
        crate::obs::log::info(
            "exec",
            format!("checkpoint append failed ({e}); continuing without persistence"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A deterministic job: records derive from the shard's substream
    /// seed and item indices only, and round-trip through 8-byte words.
    struct SeededJob {
        sabotage: Option<Sabotage>,
    }

    impl SeededJob {
        fn plain() -> SeededJob {
            SeededJob { sabotage: None }
        }
    }

    impl ShardJob for SeededJob {
        type Record = u64;

        fn run(&self, shard: &Shard) -> Vec<u64> {
            crate::obs::count("job.shards", 1);
            crate::obs::count("job.items", shard.len as u64);
            if let Some(s) = &self.sabotage {
                s.trip(shard.index);
            }
            let mut rng = Rng::seed_from_u64(shard.seed);
            shard.range().map(|i| rng.next_u64() ^ i as u64).collect()
        }

        fn encode(&self, _shard: &Shard, records: &[u64], out: &mut Vec<u8>) {
            for r in records {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }

        fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<u64>> {
            if payload.len() != shard.len * 8 {
                return None;
            }
            Some(
                payload
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            )
        }
    }

    fn temp_ck(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rt-exec-test-{}-{tag}-{n}.ck", std::process::id()))
    }

    #[test]
    fn plan_covers_every_item_once() {
        let shards = plan(103, 16, 5);
        assert_eq!(shards.len(), 7);
        let mut next = 0usize;
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.start, next);
            assert!(s.len <= 16 && s.len > 0);
            next += s.len;
        }
        assert_eq!(next, 103);
        assert!(plan(0, 16, 5).is_empty());
    }

    #[test]
    fn plan_seeds_are_decorrelated_and_stable() {
        let a = plan(64, 8, 42);
        let b = plan(64, 8, 42);
        assert_eq!(a, b, "same inputs, same plan");
        let seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "duplicate shard seeds");
        assert_ne!(plan(64, 8, 43)[0].seed, a[0].seed, "seed ignored");
    }

    #[test]
    fn segmented_plan_respects_boundaries() {
        let shards = plan_segmented(&[10, 3, 0, 7], 4, 9);
        let lens: Vec<usize> = shards.iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![4, 4, 2, 3, 4, 3]);
        let starts: Vec<usize> = shards.iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![0, 4, 8, 10, 13, 17]);
        // No shard straddles a segment edge (10, 13, 20).
        for s in &shards {
            for edge in [10usize, 13] {
                assert!(
                    s.start + s.len <= edge || s.start >= edge,
                    "shard {s:?} straddles {edge}"
                );
            }
        }
    }

    #[test]
    fn zero_length_segments_are_inert() {
        // Regression: empty segments must neither emit empty shards nor
        // shift the RNG substream seeds of the segments after them.
        for (padded, plain) in [
            (vec![0, 10, 0, 7], vec![10, 7]),
            (vec![0, 0, 10, 7, 0], vec![10, 7]),
            (vec![0, 1, 0, 0, 64, 0], vec![1, 64]),
        ] {
            let with_zeros = plan_segmented(&padded, 4, 9);
            let without = plan_segmented(&plain, 4, 9);
            assert_eq!(with_zeros, without, "{padded:?} vs {plain:?}");
            assert!(with_zeros.iter().all(|s| s.len > 0), "empty shard emitted");
        }
        assert_eq!(plan_segmented(&[0, 0, 0], 4, 9), Vec::new());
        assert_eq!(plan_segmented(&[], 4, 9), Vec::new());
    }

    #[test]
    fn fingerprint_mixes_all_parts() {
        let base = fingerprint(&[1, 2, 3]);
        assert_eq!(base, fingerprint(&[1, 2, 3]));
        assert_ne!(base, fingerprint(&[1, 2, 4]));
        assert_ne!(base, fingerprint(&[3, 2, 1]), "order must matter");
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }

    #[test]
    fn fingerprint_is_prefix_extension_safe() {
        // Regression (length mixing): a part list and any extension of
        // it must never share a fingerprint, even when the appended
        // word would map the running accumulator onto itself. Pinned
        // with a property sweep over random slices and random
        // extension/truncation/mutation edits.
        crate::check::check_cases("fingerprint prefix extension", 128, |d| {
            let parts: Vec<u64> = (0..d.below(8)).map(|_| d.next_u64()).collect();
            let base = fingerprint(&parts);
            // Any single-word extension differs — including extending
            // by a word equal to the current fingerprint or to zero,
            // the two most plausible accidental fixed points.
            for ext in [d.next_u64(), base, 0] {
                let mut extended = parts.clone();
                extended.push(ext);
                assert_ne!(base, fingerprint(&extended), "{parts:?} + {ext}");
            }
            // Truncating differs (the empty list included).
            if !parts.is_empty() {
                assert_ne!(base, fingerprint(&parts[..parts.len() - 1]), "{parts:?}");
            }
            // Mutating any single element differs.
            for i in 0..parts.len() {
                let mut mutated = parts.clone();
                mutated[i] ^= 1 << d.below(64);
                assert_ne!(base, fingerprint(&mutated), "{parts:?} at {i}");
            }
        });
        // Length-only differences are distinguished too.
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
        assert_ne!(fingerprint(&[0]), fingerprint(&[0, 0]));
    }

    #[test]
    fn short_body_crc_valid_frame_is_rejected_not_panicking() {
        // Regression: a hand-crafted frame whose CRC is valid but whose
        // body is shorter than the 8 metadata bytes used to reach the
        // `expect("body holds >= 8 bytes")` unwraps. It must be treated
        // as a corrupt tail — zero frames, graceful rejection.
        let fp = 0xDEAD_BEEFu64;
        for body_len in [0usize, 1, 4, 7] {
            let mut bytes = encode_checkpoint(fp, &[]).expect("header fits");
            push_u32(&mut bytes, body_len as u32);
            let body: Vec<u8> = (0..body_len).map(|i| i as u8).collect();
            bytes.extend_from_slice(&body);
            push_u32(&mut bytes, crc32(&body)); // CRC genuinely valid
            let decoded = decode_checkpoint(&bytes, fp);
            assert!(decoded.frames.is_empty(), "body_len {body_len}");
            assert!(!decoded.clean, "body_len {body_len}");
            assert_eq!(decoded.valid_len, HEADER_LEN, "body_len {body_len}");
        }
        // A short-body frame poisons the tail: a well-formed frame
        // appended after it is never reached (prefix semantics), while
        // the same frame before it survives.
        let good = Frame {
            shard: 3,
            records: 1,
            payload: vec![0xAB],
        };
        let mut bytes = encode_checkpoint(fp, std::slice::from_ref(&good)).expect("fits");
        let prefix_len = bytes.len();
        push_u32(&mut bytes, 4);
        let body = 7u32.to_le_bytes();
        bytes.extend_from_slice(&body);
        push_u32(&mut bytes, crc32(&body));
        encode_frame(&good, &mut bytes).expect("fits");
        let decoded = decode_checkpoint(&bytes, fp);
        assert_eq!(decoded.frames, vec![good]);
        assert_eq!(decoded.valid_len, prefix_len);
        assert!(!decoded.clean);
    }

    #[test]
    fn oversized_payload_is_a_typed_error_not_a_truncation() {
        // The frame-size contract: payloads above MAX_FRAME_PAYLOAD are
        // rejected with OversizedFrame (formerly a silent `as u32`
        // truncation at the 4 GiB boundary). The guard is exercised
        // directly — materializing a >4 GiB payload in a test is not.
        assert_eq!(MAX_FRAME_PAYLOAD, u32::MAX as usize - 8);
        assert_eq!(check_frame_payload(0), Ok(()));
        assert_eq!(check_frame_payload(MAX_FRAME_PAYLOAD), Ok(()));
        let err = check_frame_payload(MAX_FRAME_PAYLOAD + 1).unwrap_err();
        assert_eq!(
            err,
            OversizedFrame {
                payload_len: MAX_FRAME_PAYLOAD + 1
            }
        );
        assert!(err.to_string().contains("frame-size limit"), "{err}");
        // In-range frames still round-trip through the fallible codec.
        let frame = Frame {
            shard: 1,
            records: 2,
            payload: vec![1, 2, 3],
        };
        let bytes = encode_checkpoint(9, std::slice::from_ref(&frame)).expect("fits");
        assert_eq!(decode_checkpoint(&bytes, 9).frames, vec![frame]);
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE test vector plus the empty string.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn codec_roundtrips_arbitrary_frames() {
        crate::check::check_cases("checkpoint codec roundtrip", 64, |d| {
            let fp = d.next_u64();
            let frames: Vec<Frame> = (0..d.below(6))
                .map(|_| Frame {
                    shard: d.below(1000) as u32,
                    records: d.below(1000) as u32,
                    payload: (0..d.below(40)).map(|_| d.below(256) as u8).collect(),
                })
                .collect();
            let bytes = encode_checkpoint(fp, &frames).expect("frames fit");
            let decoded = decode_checkpoint(&bytes, fp);
            assert!(decoded.clean);
            assert_eq!(decoded.frames, frames);
            assert_eq!(decoded.valid_len, bytes.len());
            // A different fingerprint rejects the whole file.
            let foreign = decode_checkpoint(&bytes, fp ^ 1);
            assert!(foreign.frames.is_empty());
            assert_eq!(foreign.valid_len, 0);
        });
    }

    #[test]
    fn truncated_stream_yields_a_clean_prefix() {
        crate::check::check_cases("checkpoint truncation", 64, |d| {
            let fp = d.next_u64();
            let frames: Vec<Frame> = (0..1 + d.below(4))
                .map(|i| Frame {
                    shard: i as u32,
                    records: 1,
                    payload: (0..1 + d.below(20)).map(|_| d.below(256) as u8).collect(),
                })
                .collect();
            let bytes = encode_checkpoint(fp, &frames).expect("frames fit");
            let cut = d.below(bytes.len() + 1);
            let decoded = decode_checkpoint(&bytes[..cut], fp);
            // Whatever survives is an exact prefix of what was written.
            assert!(decoded.frames.len() <= frames.len());
            assert_eq!(decoded.frames[..], frames[..decoded.frames.len()]);
            // A cut is only "clean" when it lands exactly on a frame
            // boundary — the result then looks like a shorter checkpoint.
            let mut boundaries = vec![HEADER_LEN];
            for f in &frames {
                boundaries
                    .push(boundaries.last().expect("nonempty") + FRAME_OVERHEAD + f.payload.len());
            }
            assert_eq!(
                decoded.clean,
                cut >= HEADER_LEN && boundaries.contains(&cut)
            );
            assert!(decoded.valid_len <= cut);
        });
    }

    #[test]
    fn corrupted_byte_never_fabricates_a_frame() {
        crate::check::check_cases("checkpoint corruption", 64, |d| {
            let fp = d.next_u64();
            let frames: Vec<Frame> = (0..1 + d.below(4))
                .map(|i| Frame {
                    shard: i as u32,
                    records: 2,
                    payload: (0..4 + d.below(16)).map(|_| d.below(256) as u8).collect(),
                })
                .collect();
            let mut bytes = encode_checkpoint(fp, &frames).expect("frames fit");
            let at = d.below(bytes.len());
            let flip = 1u8 << d.below(8);
            bytes[at] ^= flip;
            let decoded = decode_checkpoint(&bytes, fp);
            // Every decoded frame must be one that was actually written,
            // in order — corruption may only shorten, never invent.
            assert!(decoded.frames.len() <= frames.len());
            assert_eq!(decoded.frames[..], frames[..decoded.frames.len()]);
            if at < HEADER_LEN {
                assert_eq!(decoded.valid_len, 0, "damaged header must reject all");
            }
        });
    }

    #[test]
    fn checkpoint_file_roundtrip_and_tail_truncation() {
        let path = temp_ck("roundtrip");
        let job = SeededJob::plain();
        let shards = plan(20, 4, 3);
        {
            let mut ck = Checkpoint::open(&path, 77).expect("open");
            assert!(ck.frames().is_empty());
            for shard in &shards[..3] {
                let records = job.run(shard);
                let mut payload = Vec::new();
                job.encode(shard, &records, &mut payload);
                ck.append(&Frame {
                    shard: shard.index as u32,
                    records: records.len() as u32,
                    payload,
                })
                .expect("append");
            }
        }
        // Corrupt the tail: damage the last byte.
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("rewrite");
        let ck = Checkpoint::open(&path, 77).expect("reopen");
        assert_eq!(ck.frames().len(), 2, "corrupt tail frame dropped");
        assert_eq!(
            fs::metadata(&path).expect("meta").len() as usize,
            bytes.len() - (FRAME_OVERHEAD + 4 * 8),
            "file truncated back to the trusted prefix"
        );
        // A foreign fingerprint resets the file entirely.
        let ck = Checkpoint::open(&path, 78).expect("reopen foreign");
        assert!(ck.frames().is_empty());
        assert_eq!(
            fs::metadata(&path).expect("meta").len() as usize,
            HEADER_LEN
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn run_shards_is_thread_count_invariant() {
        let shards = plan(57, 8, 11);
        let job = SeededJob::plain();
        let baseline = run_shards(1, &RetryPolicy::none(), None, &shards, &job);
        assert!(baseline.is_complete());
        assert_eq!(baseline.records.len(), 57);
        for threads in [2, 4, 7] {
            let r = run_shards(threads, &RetryPolicy::none(), None, &shards, &job);
            assert_eq!(r.records, baseline.records, "{threads} threads diverged");
        }
    }

    #[test]
    fn one_shot_panic_with_retry_recovers_byte_identically() {
        let shards = plan(40, 8, 21);
        let plain = SeededJob::plain();
        let ((), straight_metrics, _) = crate::obs::observe(|| {
            let straight = run_shards(2, &RetryPolicy::none(), None, &shards, &plain);
            let sab = SeededJob {
                sabotage: Some(Sabotage::once(2)),
            };
            let ((), retried_metrics, _) = crate::obs::observe(|| {
                let recovered = crate::check::quiet(|| {
                    run_shards(2, &RetryPolicy::retries(2), None, &shards, &sab)
                });
                assert!(recovered.is_complete(), "retry must recover the shard");
                assert_eq!(recovered.records, straight.records, "records drifted");
                assert_eq!(recovered.summary.retried, 1);
                assert!(recovered.summary.backoff_ticks > 0);
            });
            // The failed attempt's partial telemetry was discarded, so the
            // deterministic job counters match an untroubled run exactly.
            assert_eq!(
                retried_metrics.counter("job.shards"),
                Some(shards.len() as u64)
            );
            assert_eq!(retried_metrics.counter("job.items"), Some(40));
            assert_eq!(retried_metrics.counter("exec.shards.retried"), Some(1));
        });
        assert_eq!(
            straight_metrics.counter("job.shards"),
            Some(shards.len() as u64)
        );
    }

    #[test]
    fn exhausted_budget_degrades_to_a_manifest() {
        let shards = plan(30, 10, 9);
        let sab = SeededJob {
            sabotage: Some(Sabotage::times(1, u32::MAX)),
        };
        let report =
            crate::check::quiet(|| run_shards(2, &RetryPolicy::retries(2), None, &shards, &sab));
        assert!(!report.is_complete());
        assert_eq!(report.incomplete.len(), 1);
        let failure = &report.incomplete[0];
        assert_eq!(failure.shard, 1);
        assert_eq!((failure.start, failure.len), (10, 10));
        assert_eq!(failure.attempts, 3, "first try + two retries");
        assert!(failure.message.contains("sabotage"), "{}", failure.message);
        // Completed shards still delivered, in order.
        let plain = SeededJob::plain();
        let straight = run_shards(1, &RetryPolicy::none(), None, &shards, &plain);
        let expected: Vec<u64> = straight.records[..10]
            .iter()
            .chain(&straight.records[20..])
            .copied()
            .collect();
        assert_eq!(report.records, expected);
        assert_eq!(report.summary.completed, 2);
        assert_eq!(report.summary.failed, 1);
    }

    #[test]
    fn interrupted_run_resumes_byte_identically() {
        let shards = plan(48, 6, 33);
        let plain = SeededJob::plain();
        let straight = run_shards(3, &RetryPolicy::none(), None, &shards, &plain);
        for threads in [1, 2, 4, 7] {
            let path = temp_ck(&format!("resume-{threads}"));
            let fp = fingerprint(&[48, 6, 33]);
            // Interrupted run: shard 5 dies with no retry budget.
            let sab = SeededJob {
                sabotage: Some(Sabotage::once(5)),
            };
            let mut ck = Checkpoint::open(&path, fp).expect("open");
            let partial = crate::check::quiet(|| {
                run_shards(threads, &RetryPolicy::none(), Some(&mut ck), &shards, &sab)
            });
            assert!(!partial.is_complete());
            assert_eq!(partial.incomplete[0].shard, 5);
            drop(ck);
            // Resumed run: same fingerprint, fresh process simulation.
            let mut ck = Checkpoint::open(&path, fp).expect("reopen");
            assert_eq!(ck.frames().len(), shards.len() - 1);
            let resumed = run_shards(
                threads,
                &RetryPolicy::none(),
                Some(&mut ck),
                &shards,
                &plain,
            );
            assert!(resumed.is_complete());
            assert_eq!(
                resumed.records, straight.records,
                "resume at {threads} threads not byte-identical"
            );
            assert_eq!(resumed.summary.resumed, shards.len() - 1);
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ticks: 3,
            max_ticks: 20,
        };
        assert_eq!(p.backoff_ticks(0), 0);
        assert_eq!(p.backoff_ticks(1), 3);
        assert_eq!(p.backoff_ticks(2), 6);
        assert_eq!(p.backoff_ticks(3), 12);
        assert_eq!(p.backoff_ticks(4), 20, "capped");
        assert_eq!(p.backoff_ticks(90), 20, "shift overflow saturates");
        assert_eq!(RetryPolicy::none().backoff_ticks(1), 0);
    }

    #[test]
    fn sabotage_is_seeded_and_bounded() {
        let s = Sabotage::seeded(123, 7, 2);
        assert!(s.target() < 7);
        assert_eq!(s.target(), Sabotage::seeded(123, 7, 2).target());
        let armed = Sabotage::times(3, 2);
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(|| armed.trip(3));
            assert!(caught.is_err(), "armed sabotage must fire");
        }
        armed.trip(3); // charges spent: no panic
        armed.trip(0); // wrong shard: never fires
    }
}
