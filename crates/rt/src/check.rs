//! A seeded property-test harness with **choice-sequence shrinking** (the
//! in-tree `proptest` replacement).
//!
//! A property is a closure over a [`Draws`] source that asserts its
//! invariant with ordinary `assert!` macros. The harness runs it for a
//! fixed number of cases; case `i` draws from the reproducible stream
//! `Rng::seed_from_stream(seed, i)` while **recording every raw `u64`
//! draw**. On failure the recorded draw log is minimized Hypothesis-style
//! (delete chunks, zero blocks, bisect values toward zero) and the
//! property is re-run on each candidate by **replaying** the mutated log;
//! the reported reproducer is the smallest (shortlex) log that still
//! fails. Replay a reproducer in isolation with [`replay`].
//!
//! # Examples
//!
//! ```
//! rt::check::check("addition commutes", |rng| {
//!     let a = rng.range_f64(-1e6, 1e6);
//!     let b = rng.range_f64(-1e6, 1e6);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Replaying a shrunk failure printed by the harness:
//!
//! ```
//! use rt::check::replay;
//!
//! // A passing replay returns Ok; a failing one returns the panic text.
//! assert!(replay(&[0, 0], |d| assert!(d.next_u64() == 0)).is_ok());
//! assert!(replay(&[1], |d| assert!(d.next_u64() == 0)).is_err());
//! ```

use std::sync::Mutex;

use crate::rng::Rng;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Default harness seed. Changing it re-randomizes every property in the
/// workspace at once.
pub const DEFAULT_SEED: u64 = 0x1057_5EED;

/// Upper bound on property re-executions spent shrinking one failure.
const SHRINK_BUDGET: usize = 4096;

/// The draw source handed to properties.
///
/// In **fresh** mode it forwards to a seeded [`Rng`] and records every raw
/// `u64` produced; in **replay** mode it reads from a recorded choice
/// sequence instead (reading past the end yields `0`, the minimal draw).
/// All derived draws funnel through [`Draws::next_u64`] with exactly the
/// same arithmetic as [`Rng`], so a recorded log replays to identical
/// values.
#[derive(Debug, Clone)]
pub struct Draws {
    mode: Mode,
    log: Vec<u64>,
}

#[derive(Debug, Clone)]
enum Mode {
    Fresh(Rng),
    Replay { tape: Vec<u64>, cursor: usize },
}

impl Draws {
    /// A fresh-drawing source over `rng`, recording as it goes.
    pub fn fresh(rng: Rng) -> Draws {
        Draws {
            mode: Mode::Fresh(rng),
            log: Vec::new(),
        }
    }

    /// A replaying source over a recorded choice sequence.
    pub fn replay(tape: &[u64]) -> Draws {
        Draws {
            mode: Mode::Replay {
                tape: tape.to_vec(),
                cursor: 0,
            },
            log: Vec::new(),
        }
    }

    /// The raw draws consumed so far (the choice sequence).
    pub fn log(&self) -> &[u64] {
        &self.log
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let v = match &mut self.mode {
            Mode::Fresh(rng) => rng.next_u64(),
            Mode::Replay { tape, cursor } => {
                let v = tape.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                v
            }
        };
        self.log.push(v);
        v
    }

    /// Uniform `f64` in `[0, 1)` (same arithmetic as [`Rng::uniform`]).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range [0, 0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// A fair coin flip (top bit, like [`Rng::next_bool`]).
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.uniform() < p
    }

    /// Standard-normal sample via Box–Muller (cosine branch).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// A shrunk property failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Index of the first failing case.
    pub case: u64,
    /// Harness seed the case drew from.
    pub seed: u64,
    /// Panic message of the original (unshrunk) failure.
    pub message: String,
    /// The draw log of the first failing run.
    pub original: Vec<u64>,
    /// The minimized draw log; replaying it still fails.
    pub shrunk: Vec<u64>,
}

impl Failure {
    /// Human-readable failure report with the replay recipe.
    pub fn report(&self, name: &str) -> String {
        format!(
            "property '{name}' failed at case {case} (seed {seed:#x})\n\
             original draw log ({olen} draws): {orig:?}\n\
             shrunk   draw log ({slen} draws): {shrunk:?}\n\
             replay with rt::check::replay(&{shrunk:?}, property)\n\
             first failure: {msg}",
            case = self.case,
            seed = self.seed,
            olen = self.original.len(),
            orig = self.original,
            slen = self.shrunk.len(),
            shrunk = self.shrunk,
            msg = self.message,
        )
    }
}

/// Runs `property` for [`DEFAULT_CASES`] cases under [`DEFAULT_SEED`].
///
/// # Panics
///
/// Panics after shrinking, reporting the minimal reproducer on stderr.
pub fn check<F>(name: &str, property: F)
where
    F: FnMut(&mut Draws),
{
    check_with(name, DEFAULT_CASES, DEFAULT_SEED, property);
}

/// Runs `property` for `cases` cases under [`DEFAULT_SEED`].
///
/// # Panics
///
/// See [`check`].
pub fn check_cases<F>(name: &str, cases: usize, property: F)
where
    F: FnMut(&mut Draws),
{
    check_with(name, cases, DEFAULT_SEED, property);
}

/// Runs `property` for `cases` cases, case `i` drawing from
/// `Rng::seed_from_stream(seed, i)`.
///
/// # Panics
///
/// Panics if `cases == 0`, or panics with the shrunk-failure report after
/// minimizing the first failing case's draw log. To replay the reported
/// reproducer in isolation call [`replay`] with the printed log.
pub fn check_with<F>(name: &str, cases: usize, seed: u64, property: F)
where
    F: FnMut(&mut Draws),
{
    if let Err(failure) = check_outcome(cases, seed, property) {
        let report = failure.report(name);
        eprintln!("{report}");
        panic!("{report}");
    }
}

/// Non-panicking harness entry: returns the shrunk [`Failure`] instead of
/// panicking — the hook meta-tests use to assert shrink quality.
///
/// # Panics
///
/// Panics if `cases == 0`.
pub fn check_outcome<F>(cases: usize, seed: u64, mut property: F) -> Result<(), Failure>
where
    F: FnMut(&mut Draws),
{
    assert!(cases > 0, "a property needs at least one case");
    for case in 0..cases as u64 {
        let mut draws = Draws::fresh(Rng::seed_from_stream(seed, case));
        if let Err(message) = run_once(&mut property, &mut draws) {
            let original = draws.log().to_vec();
            let shrunk = quiet(|| shrink(&mut property, original.clone()));
            return Err(Failure {
                case,
                seed,
                message,
                original,
                shrunk,
            });
        }
    }
    Ok(())
}

/// Replays a recorded draw log against `property` once. Returns `Ok(())`
/// when the property passes and the panic message when it fails — the
/// one-shot reproducer for a harness-reported shrunk log.
pub fn replay<F>(log: &[u64], mut property: F) -> Result<(), String>
where
    F: FnMut(&mut Draws),
{
    run_once(&mut property, &mut Draws::replay(log))
}

/// Draws a vector of length `len_lo..len_hi` — a **half-open** range
/// (`len_hi` itself is never drawn) — filled by `gen`; the workhorse
/// collection generator for properties.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vec_of<T>(
    draws: &mut Draws,
    len_lo: usize,
    len_hi: usize,
    mut gen: impl FnMut(&mut Draws) -> T,
) -> Vec<T> {
    let len = draws.range_usize(len_lo, len_hi);
    (0..len).map(|_| gen(draws)).collect()
}

/// One property execution; `Err` carries the panic message.
fn run_once<F>(property: &mut F, draws: &mut Draws) -> Result<(), String>
where
    F: FnMut(&mut Draws),
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(draws)))
        .map_err(crate::obs::payload_text)
}

/// Runs `f` with the global panic hook silenced, so intentional panics —
/// the hundreds a shrink induces, or a test's injected
/// [`crate::exec::Sabotage`] faults — do not spam stderr. Panics raised
/// by `f` still propagate (and still silenced hooks restore). Serialized
/// by a mutex because the hook is process-global.
pub fn quiet<T>(f: impl FnOnce() -> T) -> T {
    static HOOK: Mutex<()> = Mutex::new(());
    let _guard = HOOK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    match out {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Shortlex order: fewer draws wins; at equal length, lexicographically
/// smaller values win.
fn shortlex_less(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Replays `tape`; on failure returns the *consumed* draw log (which
/// truncates any unread tail and materializes past-the-end zeros).
fn fails<F>(property: &mut F, tape: &[u64], budget: &mut usize) -> Option<Vec<u64>>
where
    F: FnMut(&mut Draws),
{
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    let mut draws = Draws::replay(tape);
    match run_once(property, &mut draws) {
        Err(_) => Some(draws.log().to_vec()),
        Ok(()) => None,
    }
}

/// Hypothesis-style choice-sequence minimization: repeat chunk deletion,
/// block zeroing and per-value bisection toward zero until a fixpoint (or
/// the budget runs dry). Every accepted candidate is strictly
/// shortlex-smaller, so the loop terminates.
fn shrink<F>(property: &mut F, initial: Vec<u64>) -> Vec<u64>
where
    F: FnMut(&mut Draws),
{
    let mut budget = SHRINK_BUDGET;
    let mut best = initial;
    loop {
        let mut improved = false;

        // Pass 1: delete chunks of draws, largest chunks first, scanning
        // from the tail (late draws usually matter least).
        for size in [8usize, 4, 2, 1] {
            let mut i = best.len();
            while i >= size {
                i -= 1;
                let start = i + 1 - size;
                let mut candidate = best[..start].to_vec();
                candidate.extend_from_slice(&best[start + size..]);
                if let Some(consumed) = fails(property, &candidate, &mut budget) {
                    if shortlex_less(&consumed, &best) {
                        best = consumed;
                        improved = true;
                        i = best.len();
                    }
                }
                if budget == 0 {
                    return best;
                }
            }
        }

        // Pass 2: zero whole blocks.
        for size in [4usize, 2, 1] {
            let mut start = 0;
            while start + size <= best.len() {
                if best[start..start + size].iter().any(|&v| v != 0) {
                    let mut candidate = best.clone();
                    candidate[start..start + size].fill(0);
                    if let Some(consumed) = fails(property, &candidate, &mut budget) {
                        if shortlex_less(&consumed, &best) {
                            best = consumed;
                            improved = true;
                        }
                    }
                }
                if budget == 0 {
                    return best;
                }
                start += size;
            }
        }

        // Pass 3: bisect each nonzero value toward zero. Accepted
        // candidates may shorten `best`, so re-check the length live.
        let mut idx = 0;
        while idx < best.len() {
            if best[idx] == 0 {
                idx += 1;
                continue;
            }
            // Invariant: `hi` fails (it is the current best), `lo` does
            // not (or is untried zero, tested first).
            let mut lo = 0u64;
            let mut hi = best[idx];
            let mut candidate = best.clone();
            candidate[idx] = 0;
            match fails(property, &candidate, &mut budget) {
                Some(consumed) if shortlex_less(&consumed, &best) => {
                    best = consumed;
                    improved = true;
                    continue;
                }
                _ => {}
            }
            while lo + 1 < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[idx] = mid;
                match fails(property, &candidate, &mut budget) {
                    Some(consumed) if shortlex_less(&consumed, &best) => {
                        // The consumed log may differ structurally; only
                        // continue bisecting while the slot still exists.
                        best = consumed;
                        improved = true;
                        if idx < best.len() && best[idx] < hi {
                            hi = best[idx];
                        } else {
                            break;
                        }
                    }
                    _ => lo = mid,
                }
                if budget == 0 {
                    return best;
                }
            }
            idx += 1;
        }

        if !improved || budget == 0 {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0usize;
        check_cases("counts cases", 37, |_| runs += 1);
        assert_eq!(runs, 37);
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first: Vec<u64> = Vec::new();
        check_cases("record", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        check_cases("record again", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // Distinct cases draw from distinct streams.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fresh_draws_match_the_rng_exactly() {
        // The Draws wrapper must not perturb the recorded streams: every
        // derived draw agrees with the bare Rng at the same seed.
        let mut rng = Rng::seed_from_u64(11);
        let mut draws = Draws::fresh(Rng::seed_from_u64(11));
        for _ in 0..64 {
            assert_eq!(draws.next_u64(), rng.next_u64());
        }
        let mut rng = Rng::seed_from_u64(12);
        let mut draws = Draws::fresh(Rng::seed_from_u64(12));
        for _ in 0..64 {
            assert_eq!(draws.uniform(), rng.uniform());
            assert_eq!(draws.below(17), rng.below(17));
            assert_eq!(draws.next_bool(), rng.next_bool());
            assert_eq!(draws.gaussian(), rng.gaussian());
            assert_eq!(draws.chance(0.3), rng.chance(0.3));
            assert_eq!(draws.range_f64(-2.0, 9.0), rng.range_f64(-2.0, 9.0));
            assert_eq!(draws.range_usize(3, 900), rng.range_usize(3, 900));
        }
    }

    #[test]
    fn replay_reproduces_recorded_draws() {
        let mut draws = Draws::fresh(Rng::seed_from_u64(5));
        let fresh: Vec<u64> = (0..10).map(|_| draws.next_u64()).collect();
        let mut rep = Draws::replay(draws.log());
        let replayed: Vec<u64> = (0..10).map(|_| rep.next_u64()).collect();
        assert_eq!(fresh, replayed);
        // Past the end of the tape, replay yields the minimal draw.
        assert_eq!(rep.next_u64(), 0);
    }

    #[test]
    fn failure_is_reported_and_reraised() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_cases("fails eventually", 64, |rng| {
                // Fails on the first case whose draw is odd.
                assert_eq!(rng.next_u64() % 2, 0, "odd draw");
            });
        }));
        assert!(result.is_err(), "failing property must panic");
    }

    #[test]
    fn shrinking_minimizes_the_draw_log() {
        // A property failing whenever the drawn vector sums past a
        // threshold: the minimal choice sequence is far smaller than the
        // first failing one, and the reproducer still fails on replay.
        let property = |d: &mut Draws| {
            let v = vec_of(d, 0, 100, |d| d.below(1000));
            assert!(v.iter().sum::<usize>() < 1500, "sum too large");
        };
        let failure =
            check_outcome(DEFAULT_CASES, DEFAULT_SEED, property).expect_err("property must fail");
        assert!(
            shortlex_less(&failure.shrunk, &failure.original),
            "shrunk {:?} not smaller than original {:?}",
            failure.shrunk,
            failure.original
        );
        // Replaying the shrunk log still fails with the same assertion.
        let replay_result = quiet(|| replay(&failure.shrunk, property));
        assert!(replay_result.is_err(), "shrunk reproducer must still fail");
        assert!(replay_result.unwrap_err().contains("sum too large"));
        assert!(failure.message.contains("sum too large"));
    }

    #[test]
    fn shrinking_bisects_single_values() {
        // Fails for any first draw mapping below(1000) >= 500; minimal
        // failing value of that draw maps to exactly 500.
        let property = |d: &mut Draws| {
            let k = d.below(1000);
            assert!(k < 500, "k too large");
        };
        let failure = check_outcome(DEFAULT_CASES, DEFAULT_SEED, property).expect_err("must fail");
        let mut rep = Draws::replay(&failure.shrunk);
        assert_eq!(rep.below(1000), 500, "bisection must find the boundary");
    }

    #[test]
    fn replay_of_passing_log_is_ok() {
        assert!(replay(&[2, 4, 6], |d| {
            assert_eq!(d.next_u64() % 2, 0);
        })
        .is_ok());
    }

    #[test]
    fn vec_of_respects_bounds() {
        check_cases("vec bounds", 32, |rng| {
            let v = vec_of(rng, 2, 24, |r| r.next_bool());
            assert!((2..24).contains(&v.len()));
        });
    }

    #[test]
    fn vec_of_length_range_is_half_open() {
        // `len_hi` is exclusive: with the range [3, 4) every drawn vector
        // has exactly 3 elements — `4` is never produced.
        check_cases("vec half-open", 64, |rng| {
            let v = vec_of(rng, 3, 4, |r| r.next_u64());
            assert_eq!(v.len(), 3);
        });
        // And a wider range never reaches the exclusive bound.
        check_cases("vec never hits hi", 128, |rng| {
            let v = vec_of(rng, 0, 7, |r| r.next_u64());
            assert!(v.len() < 7, "len {} reached the exclusive bound", v.len());
        });
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn zero_cases_rejected() {
        check_cases("empty", 0, |_| {});
    }
}
