//! A small seeded property-test harness (the in-tree `proptest`
//! replacement).
//!
//! A property is a closure over a [`Rng`] that asserts its invariant with
//! ordinary `assert!` macros. The harness runs it for a fixed number of
//! cases; case `i` draws from the reproducible stream
//! `Rng::seed_from_stream(seed, i)`, so a failure report identifies the
//! exact stream to replay — shrink-free by design (inputs here are small
//! enough to eyeball).
//!
//! # Examples
//!
//! ```
//! rt::check::check("addition commutes", |rng| {
//!     let a = rng.range_f64(-1e6, 1e6);
//!     let b = rng.range_f64(-1e6, 1e6);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Default harness seed. Changing it re-randomizes every property in the
/// workspace at once.
pub const DEFAULT_SEED: u64 = 0x1057_5EED;

/// Runs `property` for [`DEFAULT_CASES`] cases under [`DEFAULT_SEED`].
///
/// # Panics
///
/// Panics (re-raising the property's own panic) after reporting the
/// failing case index and stream seed on stderr.
pub fn check<F>(name: &str, property: F)
where
    F: FnMut(&mut Rng),
{
    check_with(name, DEFAULT_CASES, DEFAULT_SEED, property);
}

/// Runs `property` for `cases` cases under [`DEFAULT_SEED`].
///
/// # Panics
///
/// See [`check`].
pub fn check_cases<F>(name: &str, cases: usize, property: F)
where
    F: FnMut(&mut Rng),
{
    check_with(name, cases, DEFAULT_SEED, property);
}

/// Runs `property` for `cases` cases, case `i` drawing from
/// `Rng::seed_from_stream(seed, i)`.
///
/// # Panics
///
/// Panics if `cases == 0`, or re-raises the property's panic after
/// reporting the failing case on stderr. To replay a reported failure in
/// isolation, call the property once with
/// `Rng::seed_from_stream(seed, failing_case)`.
pub fn check_with<F>(name: &str, cases: usize, seed: u64, mut property: F)
where
    F: FnMut(&mut Rng),
{
    assert!(cases > 0, "a property needs at least one case");
    for case in 0..cases as u64 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_stream(seed, case);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with Rng::seed_from_stream({seed:#x}, {case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draws a vector of length `len_lo..len_hi` filled by `gen` — the
/// workhorse collection generator for properties.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vec_of<T>(
    rng: &mut Rng,
    len_lo: usize,
    len_hi: usize,
    mut gen: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let len = rng.range_usize(len_lo, len_hi);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0usize;
        check_cases("counts cases", 37, |_| runs += 1);
        assert_eq!(runs, 37);
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first: Vec<u64> = Vec::new();
        check_cases("record", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        check_cases("record again", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // Distinct cases draw from distinct streams.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn failure_is_reported_and_reraised() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_cases("fails eventually", 64, |rng| {
                // Fails on the first case whose draw is odd.
                assert_eq!(rng.next_u64() % 2, 0, "odd draw");
            });
        }));
        assert!(result.is_err(), "failing property must panic");
    }

    #[test]
    fn vec_of_respects_bounds() {
        check_cases("vec bounds", 32, |rng| {
            let v = vec_of(rng, 2, 24, |r| r.next_bool());
            assert!((2..24).contains(&v.len()));
        });
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn zero_cases_rejected() {
        check_cases("empty", 0, |_| {});
    }
}
