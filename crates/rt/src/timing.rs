//! Wall-clock micro-benchmark harness (the in-tree `criterion`
//! replacement).
//!
//! A [`Bench`] group runs each closure through a warm-up pass, calibrates
//! an iteration count against a time budget, then measures a batch of
//! samples and reports min / median / mean nanoseconds per iteration.
//! Results accumulate so a bench binary can print one aligned table at
//! the end.
//!
//! # Examples
//!
//! ```
//! let mut bench = rt::timing::Bench::new("demo");
//! bench.run("sum_1k", || (0..1000u64).sum::<u64>());
//! assert_eq!(bench.results().len(), 1);
//! ```

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Iterations per measured sample.
    pub iters_per_sample: u64,
    /// Number of measured samples.
    pub samples: usize,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, in nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over all samples, in nanoseconds per iteration.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Iterations per second implied by the median sample.
    ///
    /// A sub-nanosecond closure can round `median_ns` down to `0.0` after
    /// calibration; `1e9 / 0.0` would report `inf` iterations per second
    /// (and `NaN` for a degenerate negative reading). Such measurements
    /// saturate at the throughput implied by one timer tick (1 ns) per
    /// iteration instead — finite, and an explicit "faster than the clock
    /// resolves" ceiling.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.median_ns >= 1.0 {
            1e9 / self.median_ns
        } else {
            1e9
        }
    }
}

impl fmt::Display for BenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} {:>12}  {:>12}  {:>12}",
            self.name,
            format_ns(self.min_ns),
            format_ns(self.median_ns),
            format_ns(self.mean_ns),
        )
    }
}

/// Renders nanoseconds with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing a time budget.
#[derive(Debug)]
pub struct Bench {
    title: String,
    budget: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a group with the default budget (roughly 0.25 s of
    /// measurement per benchmark, 10 samples).
    pub fn new(title: impl Into<String>) -> Bench {
        Bench {
            title: title.into(),
            budget: Duration::from_millis(250),
            samples: 10,
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn with_budget(mut self, budget: Duration) -> Bench {
        self.budget = budget;
        self
    }

    /// Overrides the sample count.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn with_samples(mut self, samples: usize) -> Bench {
        assert!(samples > 0, "at least one sample is required");
        self.samples = samples;
        self
    }

    /// Measures `f`, recording and returning its summary.
    pub fn run<R>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> R) -> &BenchResult {
        // Warm-up and calibration: time single iterations until we can
        // size a batch that fills budget/samples.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.budget / 10 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let sample_budget = self.budget.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);

        let result = BenchResult {
            name: name.into(),
            iters_per_sample,
            samples: self.samples,
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        };
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All recorded results in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the aligned summary table.
    pub fn report(&self) -> String {
        let mut out = format!(
            "=== {} ===\n{:<44} {:>12}  {:>12}  {:>12}\n",
            self.title, "benchmark", "min", "median", "mean"
        );
        for r in &self.results {
            out.push_str(&format!("{r}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Bench {
        Bench::new("test")
            .with_budget(Duration::from_millis(20))
            .with_samples(3)
    }

    #[test]
    fn measures_something_positive() {
        let mut b = quick();
        let r = b.run("spin", || (0..100u64).product::<u64>());
        assert!(r.min_ns > 0.0);
        assert!(r.median_ns >= r.min_ns);
        assert!(r.iters_per_sample >= 1);
        assert!(r.throughput_per_sec() > 0.0);
    }

    #[test]
    fn zero_median_saturates_instead_of_inf() {
        let r = BenchResult {
            name: "degenerate".to_string(),
            iters_per_sample: 1,
            samples: 1,
            min_ns: 0.0,
            median_ns: 0.0,
            mean_ns: 0.0,
        };
        let t = r.throughput_per_sec();
        assert!(t.is_finite(), "zero median must not yield inf: {t}");
        assert!(!t.is_nan());
        assert_eq!(t, 1e9, "saturates at one iteration per timer tick");
        // Sub-tick medians saturate the same way.
        let sub = BenchResult {
            median_ns: 0.25,
            ..r.clone()
        };
        assert_eq!(sub.throughput_per_sec(), 1e9);
        // Normal medians are unaffected.
        let normal = BenchResult {
            median_ns: 4.0,
            ..r
        };
        assert_eq!(normal.throughput_per_sec(), 0.25e9);
    }

    #[test]
    fn slower_work_measures_slower() {
        let mut b = quick();
        let fast = b.run("fast", || black_box(1u64) + 1).median_ns;
        let slow = b
            .run("slow", || {
                (0..10_000u64).fold(0u64, |a, x| a ^ x.wrapping_mul(31))
            })
            .median_ns;
        assert!(slow > fast, "slow {slow} <= fast {fast}");
    }

    #[test]
    fn report_lists_all_runs() {
        let mut b = quick();
        b.run("one", || 1);
        b.run("two", || 2);
        let report = b.report();
        assert!(report.contains("one") && report.contains("two"));
        assert_eq!(b.results().len(), 2);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("µs"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with('s'));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = Bench::new("x").with_samples(0);
    }
}
