//! Bit-error-rate analysis: bathtub curves and timing margins.
//!
//! The synchronizer samples at phase `φ` inside an eye of half-width `w`
//! with Gaussian sampling jitter `σ`. The per-bit error probability is the
//! probability that the jittered sampling instant leaves the eye,
//!
//! ```text
//! BER(φ) = Q((w − (φ − c))/σ) + Q((w + (φ − c))/σ)
//! ```
//!
//! with `c` the eye center and `Q` the Gaussian tail. Sweeping `φ`
//! produces the classic *bathtub curve*; the horizontal span where the
//! curve stays below a target BER is the timing margin the clock
//! synchronizer must maintain — the quantitative version of the paper's
//! "sample at the center of the data eye".
//!
//! # Examples
//!
//! ```
//! use link::ber::BerModel;
//!
//! let m = BerModel::new(0.37, 0.30, 0.045);
//! // At the eye center the BER is astronomically low...
//! assert!(m.ber_at(0.37) < 1e-9);
//! // ...and at the eye edge it approaches one half.
//! assert!(m.ber_at(0.67) > 0.4);
//! ```

/// Gaussian right-tail probability `Q(x) = 0.5 * erfc(x / sqrt(2))`.
///
/// # Examples
///
/// ```
/// use link::ber::q_function;
///
/// assert!((q_function(0.0) - 0.5).abs() < 1e-7);
/// // Symmetry: Q(-x) = 1 - Q(x).
/// assert!((q_function(-1.0) + q_function(1.0) - 1.0).abs() < 1e-7);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Switch-over point between the A–S polynomial and the continued
/// fraction: at `x = 2` the polynomial's ~1.5e-7 absolute error is still
/// orders of magnitude below `erfc(2) ≈ 4.68e-3`, while beyond it the
/// *relative* error blows up and the tail eventually goes negative.
const ERFC_TAIL_SWITCH: f64 = 2.0;

/// Complementary error function.
///
/// Near the origin (`|x| < 2`) this is the Abramowitz–Stegun 7.1.26
/// rational approximation (absolute error < 1.5e-7). That polynomial's
/// error term dominates the true value deep in the tail — around
/// `x ≈ 3.7` it returns *negative* "probabilities", which used to corrupt
/// log-scale bathtub floors and the `timing_margin` bisection. The far
/// tail therefore switches to the Legendre continued fraction
///
/// ```text
/// erfc(x) = exp(-x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))
/// ```
///
/// evaluated bottom-up, whose *relative* error at `x ≥ 2` is far below
/// the polynomial's. The result is always within `[0, 2]` (and `[0, 1]`
/// for `x ≥ 0`), monotonically decreasing, and strictly positive for any
/// finite argument until it underflows to `+0.0`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return (2.0 - erfc(-x)).clamp(0.0, 2.0);
    }
    let r = if x < ERFC_TAIL_SWITCH {
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let poly = t
            * (0.254829592
                + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        poly * (-x * x).exp()
    } else {
        // Bottom-up evaluation of the continued fraction with terms
        // a_n = n/2: the denominator chain x + a_1/(x + a_2/(x + …)).
        // 60 levels is converged to double precision for every x >= 2.
        let mut k = 0.0f64;
        for n in (1..=60).rev() {
            k = (n as f64 / 2.0) / (x + k);
        }
        (-x * x).exp() / ((x + k) * std::f64::consts::PI.sqrt())
    };
    r.clamp(0.0, 1.0)
}

/// A Gaussian-jitter eye model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerModel {
    center_ui: f64,
    half_width_ui: f64,
    sigma_ui: f64,
}

impl BerModel {
    /// Creates a model for an eye centered at `center_ui` with half-width
    /// `half_width_ui` and RMS jitter `sigma_ui` (all in UI).
    ///
    /// # Panics
    ///
    /// Panics if the half-width or jitter is not strictly positive.
    pub fn new(center_ui: f64, half_width_ui: f64, sigma_ui: f64) -> BerModel {
        assert!(half_width_ui > 0.0, "eye half-width must be positive");
        assert!(sigma_ui > 0.0, "jitter must be positive");
        BerModel {
            center_ui,
            half_width_ui,
            sigma_ui,
        }
    }

    /// Eye center in UI.
    pub fn center_ui(&self) -> f64 {
        self.center_ui
    }

    /// Error probability when sampling at phase `phi_ui`.
    pub fn ber_at(&self, phi_ui: f64) -> f64 {
        let d = phi_ui - self.center_ui;
        let left = (self.half_width_ui + d) / self.sigma_ui;
        let right = (self.half_width_ui - d) / self.sigma_ui;
        (q_function(left) + q_function(right)).min(1.0)
    }

    /// The bathtub curve: `points` samples of `(phase, BER)` across one UI
    /// centered on the eye. Dense curves (>= 1024 points, the experiment
    /// binaries' sweeps) are fanned across cores; each point is an
    /// independent closed-form evaluation, so the output is identical to
    /// the sequential sweep.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn bathtub(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        let point = |i: usize| {
            let phi = self.center_ui - 0.5 + i as f64 / (points - 1) as f64;
            (phi, self.ber_at(phi))
        };
        if points >= 1024 {
            rt::par::parallel_map_indexed(points, point)
        } else {
            (0..points).map(point).collect()
        }
    }

    /// The timing margin (total open span, in UI) at a target BER:
    /// `2 * (w - σ·Q⁻¹(target))`, clamped at zero. Uses bisection on the
    /// analytic single-edge expression.
    ///
    /// # Examples
    ///
    /// ```
    /// use link::ber::BerModel;
    ///
    /// let m = BerModel::new(0.37, 0.30, 0.045);
    /// // A looser target leaves more of the eye usable...
    /// assert!(m.timing_margin(1e-3) > m.timing_margin(1e-9));
    /// // ...and at 1e-12 the paper's jitter budget consumes it entirely.
    /// assert_eq!(m.timing_margin(1e-12), 0.0);
    /// ```
    pub fn timing_margin(&self, target_ber: f64) -> f64 {
        // Find x with Q(x) = target (single dominant edge) by bisection.
        let (mut lo, mut hi) = (0.0f64, 40.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if q_function(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let x = 0.5 * (lo + hi);
        (2.0 * (self.half_width_ui - self.sigma_ui * x)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_points() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158655).abs() < 1e-4);
        assert!((q_function(3.0) - 1.3499e-3).abs() < 1e-5);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((q_function(-1.0) + q_function(1.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn erfc_deep_tail_known_points() {
        // Continued-fraction region, values to >= 6 significant digits.
        for (x, want) in [
            (2.0, 4.677735e-3),
            (3.0, 2.209050e-5),
            (4.0, 1.541726e-8),
            (5.0, 1.537460e-12),
            (6.0, 2.151973e-17),
            (8.0, 1.122430e-29),
        ] {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-6,
                "erfc({x}) = {got:e}, want {want:e}"
            );
        }
    }

    #[test]
    fn erfc_never_negative_and_bounded() {
        // Regression: the bare A–S polynomial goes negative near x ≈ 3.7
        // (≈ -9e-8), poisoning log-scale bathtubs. Sweep the whole usable
        // range on both sides, including the polynomial/continued-fraction
        // switch-over, at fine steps.
        let mut x = -30.0f64;
        while x <= 30.0 {
            let v = erfc(x);
            assert!((0.0..=2.0).contains(&v), "erfc({x}) = {v} out of [0, 2]");
            if x >= 0.0 {
                assert!(v <= 1.0, "erfc({x}) = {v} above 1");
            }
            x += 0.01;
        }
        // Deep tail underflows to +0.0, never to a negative number.
        assert_eq!(erfc(40.0), 0.0);
        assert!(erfc(40.0).is_sign_positive());
    }

    #[test]
    fn erfc_is_monotone_decreasing() {
        // Monotone non-increasing across the sweep, strictly decreasing
        // away from the saturated ends (erfc(x) rounds to exactly 2.0 for
        // x ≲ -5.9 and underflows to 0.0 past x ≈ 26.5) — in particular
        // across the x = 2 switch-over.
        let mut x = -10.0f64;
        let mut prev = erfc(x);
        x += 0.01;
        while x <= 28.0 {
            let v = erfc(x);
            assert!(v <= prev, "erfc not monotone at {x}: {v} > {prev}");
            if prev <= 1.99 && v > 0.0 && x < 26.0 {
                assert!(v < prev, "erfc stalled at {x}");
            }
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn deep_bathtub_floor_is_a_probability() {
        // The motivating failure: far from center the two-edge sum used
        // to dip below zero. The floor must stay a probability.
        let m = BerModel::new(0.5, 0.45, 0.045);
        let mut phi = 0.05;
        while phi <= 0.95 {
            let b = m.ber_at(phi);
            assert!((0.0..=1.0).contains(&b), "ber_at({phi}) = {b}");
            phi += 0.001;
        }
        assert!(m.ber_at(0.5) >= 0.0);
    }

    #[test]
    fn bathtub_is_symmetric_and_minimal_at_center() {
        let m = BerModel::new(0.37, 0.3, 0.045);
        let center = m.ber_at(0.37);
        for d in [0.05, 0.1, 0.2, 0.28] {
            let left = m.ber_at(0.37 - d);
            let right = m.ber_at(0.37 + d);
            assert!(
                (left - right).abs() < 1e-12 * left.max(1e-300),
                "asymmetric at {d}"
            );
            assert!(left >= center);
        }
    }

    #[test]
    fn more_jitter_more_errors() {
        let clean = BerModel::new(0.37, 0.3, 0.02);
        let noisy = BerModel::new(0.37, 0.3, 0.1);
        let phi = 0.37 + 0.2;
        assert!(noisy.ber_at(phi) > clean.ber_at(phi));
    }

    #[test]
    fn timing_margin_shrinks_with_jitter_and_target() {
        let m = BerModel::new(0.37, 0.3, 0.02);
        let loose = m.timing_margin(1e-3);
        let tight = m.timing_margin(1e-12);
        assert!(loose > tight, "{loose} vs {tight}");
        let noisy = BerModel::new(0.37, 0.3, 0.04);
        assert!(noisy.timing_margin(1e-12) < tight);
        // At the paper's 0.045 UI RMS jitter the 1e-12 margin vanishes
        // (0.045 * Q^-1(1e-12) ≈ 0.32 UI > the 0.30 UI half eye) — the
        // quantitative reason the synchronizer must hold the sampling
        // instant at the very center.
        let paper = BerModel::new(0.37, 0.3, 0.045);
        assert_eq!(paper.timing_margin(1e-12), 0.0);
        assert!(paper.timing_margin(1e-6) > 0.0);
        // A hopeless eye has zero margin.
        let closed = BerModel::new(0.37, 0.05, 0.1);
        assert_eq!(closed.timing_margin(1e-12), 0.0);
    }

    #[test]
    fn margin_consistent_with_curve() {
        // At the edge of the reported margin the BER is near the target.
        let m = BerModel::new(0.5, 0.3, 0.05);
        let target = 1e-9;
        let margin = m.timing_margin(target);
        let edge = 0.5 + margin / 2.0;
        let ber = m.ber_at(edge);
        assert!(ber < target * 10.0 && ber > target / 10.0, "{ber}");
    }

    #[test]
    fn bathtub_shape() {
        let m = BerModel::new(0.5, 0.3, 0.045);
        let curve = m.bathtub(101);
        assert_eq!(curve.len(), 101);
        // Walls high, floor low.
        assert!(curve[0].1 > 0.3);
        assert!(curve[50].1 < 1e-9);
        assert!(curve[100].1 > 0.3);
    }

    #[test]
    fn dense_bathtub_matches_pointwise_evaluation() {
        // The parallel path (>= 1024 points) must agree bit-for-bit with
        // direct evaluation.
        let m = BerModel::new(0.37, 0.3, 0.045);
        let curve = m.bathtub(2048);
        assert_eq!(curve.len(), 2048);
        for (i, (phi, ber)) in curve.iter().enumerate().step_by(257) {
            let expected_phi = 0.37 - 0.5 + i as f64 / 2047.0;
            assert_eq!(*phi, expected_phi);
            assert_eq!(*ber, m.ber_at(expected_phi));
        }
    }

    #[test]
    #[should_panic(expected = "half-width must be positive")]
    fn zero_width_rejected() {
        let _ = BerModel::new(0.5, 0.0, 0.05);
    }
}
