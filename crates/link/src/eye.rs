//! Eye-diagram accumulation and eye-opening metrics.
//!
//! The synchronizer's whole purpose is to sample "at the center of the
//! data eye"; this module measures that eye. An [`EyeDiagram`] folds a
//! received waveform modulo the UI, tracking per-phase worst-case levels
//! for transmitted ones and zeros; the *opening* at a phase is the gap
//! between the lowest received one and the highest received zero (negative
//! when the eye is closed).
//!
//! [`EyeDiagram::from_waveform`] aligns the bit sequence to the waveform
//! automatically by scanning integer-UI latencies and keeping the best —
//! the RC channel's group delay is not known a priori.
//!
//! # Examples
//!
//! ```
//! use link::eye::EyeDiagram;
//! use msim::units::Volt;
//!
//! let mut eye = EyeDiagram::new(4);
//! eye.add(1, true, Volt::from_mv(25.0));
//! eye.add(1, false, Volt::from_mv(-25.0));
//! assert!((eye.opening_at(1).mv() - 50.0).abs() < 1e-9);
//! ```

use msim::signal::Waveform;
use msim::units::Volt;

/// A folded eye diagram over one UI.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeDiagram {
    oversample: usize,
    ones_min: Vec<f64>,
    zeros_max: Vec<f64>,
    samples: usize,
}

impl EyeDiagram {
    /// Creates an empty eye with `oversample` phase bins per UI.
    ///
    /// # Panics
    ///
    /// Panics if `oversample < 2`.
    pub fn new(oversample: usize) -> EyeDiagram {
        assert!(oversample >= 2, "eye needs at least two phase bins");
        EyeDiagram {
            oversample,
            ones_min: vec![f64::INFINITY; oversample],
            zeros_max: vec![f64::NEG_INFINITY; oversample],
            samples: 0,
        }
    }

    /// Phase bins per UI.
    pub fn oversample(&self) -> usize {
        self.oversample
    }

    /// Number of accumulated samples.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Accumulates one sample of the received waveform at phase bin
    /// `phase` during a UI whose transmitted bit was `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn add(&mut self, phase: usize, bit: bool, v: Volt) {
        assert!(phase < self.oversample, "phase bin out of range");
        if bit {
            self.ones_min[phase] = self.ones_min[phase].min(v.value());
        } else {
            self.zeros_max[phase] = self.zeros_max[phase].max(v.value());
        }
        self.samples += 1;
    }

    /// Worst-case vertical opening at a phase bin; negative when closed,
    /// zero when one of the rails has no samples yet.
    pub fn opening_at(&self, phase: usize) -> Volt {
        let lo = self.ones_min[phase];
        let hi = self.zeros_max[phase];
        if lo.is_finite() && hi.is_finite() {
            Volt(lo - hi)
        } else {
            Volt::ZERO
        }
    }

    /// The best phase bin and its opening.
    pub fn best(&self) -> (usize, Volt) {
        (0..self.oversample)
            .map(|p| (p, self.opening_at(p)))
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("at least two phase bins")
    }

    /// The best phase as a fraction of the UI.
    pub fn best_phase_ui(&self) -> f64 {
        self.best().0 as f64 / self.oversample as f64
    }

    /// Renders the eye mask as ASCII art: `#` marks the vertical band
    /// guaranteed occupied by signal trajectories at each phase, `.` the
    /// open eye between the worst one and the worst zero.
    ///
    /// # Panics
    ///
    /// Panics if `height < 3`.
    pub fn render_ascii(&self, height: usize) -> String {
        assert!(height >= 3, "rendering needs at least three rows");
        let (lo, hi) = self.ones_min.iter().chain(self.zeros_max.iter()).fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), v| {
                if v.is_finite() {
                    (lo.min(*v), hi.max(*v))
                } else {
                    (lo, hi)
                }
            },
        );
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return String::from("(eye empty)\n");
        }
        let row_of = |v: f64| {
            let frac = (v - lo) / (hi - lo);
            ((1.0 - frac) * (height - 1) as f64).round() as usize
        };
        let mut grid = vec![vec![' '; self.oversample]; height];
        for p in 0..self.oversample {
            let one = self.ones_min[p];
            let zero = self.zeros_max[p];
            if !one.is_finite() || !zero.is_finite() {
                continue;
            }
            let (r_one, r_zero) = (row_of(one), row_of(zero));
            for (r, row) in grid.iter_mut().enumerate() {
                row[p] = if one > zero && r > r_one && r < r_zero {
                    '.'
                } else {
                    '#'
                };
            }
        }
        let mut out = String::new();
        for row in grid {
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out
    }

    /// Folds a received waveform against its transmitted bit sequence,
    /// scanning integer-UI latencies `0..=max_delay_ui` and returning the
    /// eye for the best alignment. Candidate alignments are independent
    /// full folds of the waveform, so they are fanned across cores; ties
    /// keep the smallest delay, exactly as the sequential scan did.
    ///
    /// The waveform must hold `bits.len() * oversample` samples (one UI of
    /// `oversample` points per bit), as produced by
    /// [`crate::LowSwingLink::transmit`].
    ///
    /// # Panics
    ///
    /// Panics if the waveform length does not match the bit count.
    pub fn from_waveform(
        wave: &Waveform,
        bits: &[bool],
        oversample: usize,
        max_delay_ui: usize,
    ) -> EyeDiagram {
        assert_eq!(
            wave.len(),
            bits.len() * oversample,
            "waveform/bit length mismatch"
        );
        let candidates = rt::par::parallel_map_indexed(max_delay_ui + 1, |delay| {
            let mut eye = EyeDiagram::new(oversample);
            // Sample k belongs to UI k/oversample; attribute it to the bit
            // transmitted `delay` UIs earlier.
            for (k, v) in wave.samples().iter().enumerate() {
                let ui = k / oversample;
                if ui < delay {
                    continue;
                }
                let bit_idx = ui - delay;
                if bit_idx >= bits.len() {
                    break;
                }
                eye.add(k % oversample, bits[bit_idx], *v);
            }
            eye
        });
        let mut best: Option<EyeDiagram> = None;
        for eye in candidates {
            let keep = match &best {
                None => true,
                Some(b) => eye.best().1 > b.best().1,
            };
            if keep {
                best = Some(eye);
            }
        }
        best.expect("at least one alignment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::units::Sec;

    #[test]
    fn opening_is_worst_case_gap() {
        let mut eye = EyeDiagram::new(4);
        eye.add(2, true, Volt::from_mv(30.0));
        eye.add(2, true, Volt::from_mv(20.0)); // worst one
        eye.add(2, false, Volt::from_mv(-25.0));
        eye.add(2, false, Volt::from_mv(-5.0)); // worst zero
        assert!((eye.opening_at(2).mv() - 25.0).abs() < 1e-9);
        assert_eq!(eye.sample_count(), 4);
    }

    #[test]
    fn unpopulated_phase_reads_zero() {
        let eye = EyeDiagram::new(4);
        assert_eq!(eye.opening_at(0), Volt::ZERO);
        let mut eye = EyeDiagram::new(4);
        eye.add(0, true, Volt::from_mv(30.0));
        // Only ones seen: still zero.
        assert_eq!(eye.opening_at(0), Volt::ZERO);
    }

    #[test]
    fn closed_eye_is_negative() {
        let mut eye = EyeDiagram::new(2);
        eye.add(0, true, Volt::from_mv(-10.0));
        eye.add(0, false, Volt::from_mv(10.0));
        assert!(eye.opening_at(0).mv() < 0.0);
    }

    #[test]
    fn best_picks_widest_phase() {
        let mut eye = EyeDiagram::new(4);
        for p in 0..4 {
            let margin = [5.0, 25.0, 15.0, 1.0][p];
            eye.add(p, true, Volt::from_mv(margin));
            eye.add(p, false, Volt::from_mv(-margin));
        }
        let (phase, opening) = eye.best();
        assert_eq!(phase, 1);
        assert!((opening.mv() - 50.0).abs() < 1e-9);
        assert!((eye.best_phase_ui() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_waveform_aligns_latency() {
        // Ideal NRZ waveform delayed by exactly 2 UI.
        let oversample = 8;
        let bits = [true, false, true, true, false, false, true, false];
        let delay = 2;
        let mut wave = Waveform::new(Sec::from_ps(50.0));
        for ui in 0..bits.len() {
            let src = if ui >= delay { bits[ui - delay] } else { true };
            for _ in 0..oversample {
                wave.push(Volt::from_mv(if src { 30.0 } else { -30.0 }));
            }
        }
        let eye = EyeDiagram::from_waveform(&wave, &bits, oversample, 4);
        let (_, opening) = eye.best();
        assert!(
            (opening.mv() - 60.0).abs() < 1e-9,
            "perfect alignment must recover the full 60 mV eye, got {opening}"
        );
    }

    #[test]
    fn ascii_rendering_shows_an_opening() {
        let mut eye = EyeDiagram::new(8);
        for p in 0..8 {
            // A lens-shaped eye: widest in the middle.
            let margin = [2.0, 8.0, 14.0, 18.0, 18.0, 14.0, 8.0, 2.0][p];
            eye.add(p, true, Volt::from_mv(margin));
            eye.add(p, false, Volt::from_mv(-margin));
        }
        let art = eye.render_ascii(9);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9);
        // The middle row is open across the central phases.
        assert!(lines[4].contains('.'), "no opening drawn:\n{art}");
        // The top row is signal everywhere.
        assert!(lines[0].chars().all(|c| c == '#'), "{art}");
    }

    #[test]
    fn ascii_rendering_of_empty_eye() {
        let eye = EyeDiagram::new(4);
        assert_eq!(eye.render_ascii(5), "(eye empty)\n");
    }

    #[test]
    #[should_panic(expected = "at least three rows")]
    fn ascii_too_short_panics() {
        let mut eye = EyeDiagram::new(4);
        eye.add(0, true, Volt::from_mv(5.0));
        let _ = eye.render_ascii(2);
    }

    #[test]
    #[should_panic(expected = "waveform/bit length mismatch")]
    fn mismatched_lengths_panic() {
        let wave = Waveform::new(Sec::from_ps(50.0));
        let _ = EyeDiagram::from_waveform(&wave, &[true], 8, 0);
    }

    #[test]
    #[should_panic(expected = "phase bin out of range")]
    fn bad_phase_panics() {
        let mut eye = EyeDiagram::new(2);
        eye.add(2, true, Volt::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least two phase bins")]
    fn tiny_oversample_panics() {
        let _ = EyeDiagram::new(1);
    }
}
