//! Stand-alone DLL BIST (the paper's deferred extension).
//!
//! The interconnect BIST deliberately does not test the DLL: *"This DLL
//! can be treated as a stand-alone unit and using the techniques reported
//! in \[11\], \[12\] a complete test of the DLL can be integrated with the
//! interconnect test."* Those references describe all-digital BISTs that
//! measure the spacing of the DLL's output phases. This module implements
//! that extension: a counter-based time-to-digital measurement of every
//! adjacent phase spacing, checked against the ideal `1/N` UI grid.
//!
//! # Examples
//!
//! ```
//! use link::dll_bist::{DllBist, DllUnderTest};
//!
//! let bist = DllBist::new(10, 0.02, 0.005);
//! assert!(bist.run(&DllUnderTest::healthy(10)).pass);
//! // A phase stuck on its neighbour collapses one spacing: caught.
//! let faulty = DllUnderTest::healthy(10).with_phase_stuck(4);
//! assert!(!bist.run(&faulty).pass);
//! ```

/// A DLL with (possibly faulty) output phase positions.
#[derive(Debug, Clone, PartialEq)]
pub struct DllUnderTest {
    positions_ui: Vec<f64>,
}

impl DllUnderTest {
    /// A healthy `n`-phase DLL: evenly spaced positions `i/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn healthy(n: usize) -> DllUnderTest {
        assert!(n >= 2, "a DLL needs at least two phases");
        DllUnderTest {
            positions_ui: (0..n).map(|i| i as f64 / n as f64).collect(),
        }
    }

    /// Phase `i` collapses onto its predecessor (a dead delay element).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_phase_stuck(mut self, i: usize) -> DllUnderTest {
        assert!(i < self.positions_ui.len(), "phase out of range");
        let prev = self.positions_ui[(i + self.positions_ui.len() - 1) % self.positions_ui.len()];
        self.positions_ui[i] = prev;
        self
    }

    /// Phase `i` is skewed by `d_ui` (a drifted delay element).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_phase_skew(mut self, i: usize, d_ui: f64) -> DllUnderTest {
        assert!(i < self.positions_ui.len(), "phase out of range");
        self.positions_ui[i] = (self.positions_ui[i] + d_ui).rem_euclid(1.0);
        self
    }

    /// Phase count.
    pub fn len(&self) -> usize {
        self.positions_ui.len()
    }

    /// Always `false` (at least two phases).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Phase positions in UI.
    pub fn positions_ui(&self) -> &[f64] {
        &self.positions_ui
    }
}

/// Report of one DLL BIST execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DllBistReport {
    /// Overall verdict.
    pub pass: bool,
    /// Measured adjacent spacings (TDC-quantized), in UI.
    pub spacings_ui: Vec<f64>,
    /// Indices of spacings outside the tolerance band.
    pub failing: Vec<usize>,
}

/// The all-digital phase-spacing BIST.
#[derive(Debug, Clone, PartialEq)]
pub struct DllBist {
    phases: usize,
    tolerance_ui: f64,
    tdc_resolution_ui: f64,
}

impl DllBist {
    /// Creates a BIST for an `n`-phase DLL with the given spacing
    /// tolerance and time-to-digital converter resolution (both in UI).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, the tolerance is not positive, or the TDC
    /// resolution is not positive or exceeds the tolerance (the
    /// measurement could not resolve its own pass band).
    pub fn new(phases: usize, tolerance_ui: f64, tdc_resolution_ui: f64) -> DllBist {
        assert!(phases >= 2, "a DLL needs at least two phases");
        assert!(tolerance_ui > 0.0, "tolerance must be positive");
        assert!(
            tdc_resolution_ui > 0.0 && tdc_resolution_ui <= tolerance_ui,
            "TDC resolution must be positive and finer than the tolerance"
        );
        DllBist {
            phases,
            tolerance_ui,
            tdc_resolution_ui,
        }
    }

    /// Measures all adjacent spacings (wrapping) through the quantizing
    /// TDC and checks each against `1/phases ± tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if the device's phase count differs from the BIST's.
    pub fn run(&self, dut: &DllUnderTest) -> DllBistReport {
        assert_eq!(dut.len(), self.phases, "phase count mismatch");
        let n = self.phases;
        let ideal = 1.0 / n as f64;
        let mut spacings = Vec::with_capacity(n);
        let mut failing = Vec::new();
        for i in 0..n {
            let a = dut.positions_ui()[i];
            let b = dut.positions_ui()[(i + 1) % n];
            let raw = (b - a).rem_euclid(1.0);
            // Counter-based TDC: quantize to the converter resolution.
            let measured = (raw / self.tdc_resolution_ui).round() * self.tdc_resolution_ui;
            if (measured - ideal).abs() > self.tolerance_ui + 1e-12 {
                failing.push(i);
            }
            spacings.push(measured);
        }
        DllBistReport {
            pass: failing.is_empty(),
            spacings_ui: spacings,
            failing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bist() -> DllBist {
        DllBist::new(10, 0.02, 0.005)
    }

    #[test]
    fn healthy_dll_passes() {
        let r = bist().run(&DllUnderTest::healthy(10));
        assert!(r.pass);
        assert_eq!(r.spacings_ui.len(), 10);
        for s in &r.spacings_ui {
            assert!((s - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn stuck_phase_fails_two_spacings() {
        // Collapsing phase 4 onto phase 3 zeroes spacing 3→4 and doubles
        // spacing 4→5.
        let r = bist().run(&DllUnderTest::healthy(10).with_phase_stuck(4));
        assert!(!r.pass);
        assert_eq!(r.failing, vec![3, 4]);
        assert!(r.spacings_ui[3].abs() < 1e-9);
        assert!((r.spacings_ui[4] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn skew_beyond_tolerance_fails() {
        let r = bist().run(&DllUnderTest::healthy(10).with_phase_skew(7, 0.05));
        assert!(!r.pass);
        assert_eq!(r.failing.len(), 2); // both adjacent spacings move
    }

    #[test]
    fn skew_below_tdc_resolution_escapes() {
        // A 2 m-UI skew is below both the tolerance and the TDC LSB:
        // honest measurement floor.
        let r = bist().run(&DllUnderTest::healthy(10).with_phase_skew(7, 0.002));
        assert!(r.pass);
    }

    #[test]
    fn spacings_sum_to_one_ui() {
        for dut in [
            DllUnderTest::healthy(10),
            DllUnderTest::healthy(10).with_phase_skew(2, 0.03),
        ] {
            let r = bist().run(&dut);
            let total: f64 = r.spacings_ui.iter().sum();
            assert!((total - 1.0).abs() < 0.03, "total {total}");
        }
    }

    #[test]
    #[should_panic(expected = "phase count mismatch")]
    fn wrong_phase_count_panics() {
        let _ = bist().run(&DllUnderTest::healthy(8));
    }

    #[test]
    #[should_panic(expected = "finer than the tolerance")]
    fn coarse_tdc_rejected() {
        let _ = DllBist::new(10, 0.01, 0.02);
    }
}
