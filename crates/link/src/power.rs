//! Energy-per-bit accounting: why the link is *low-swing* and
//! *repeaterless*.
//!
//! The paper's opening premise (after refs \[1\]–\[6\]) is that full-swing
//! repeated wires burn too much power on long on-chip routes. First-order
//! CV²-based accounting makes the comparison concrete:
//!
//! * **full-swing repeated wire** — the whole wire capacitance (plus the
//!   inserted repeaters' input/output capacitance) swings `VDD` every
//!   transition: `E ≈ α · (C_wire + C_rep) · VDD²`,
//! * **low-swing capacitively coupled link** — the line swings only
//!   `V_swing`, driven through the coupling caps plus a weak static
//!   driver, and the receiver adds comparator/synchronizer overhead:
//!   `E ≈ α · (C_wire · VDD · V_swing + C_c · VDD²) + E_rx`.
//!
//! (The driven-through-a-capacitor term costs `C·VDD·V_swing` from the
//! supply because the charge `C_wire·V_swing` is drawn at `VDD` through
//! the pre-driver.)
//!
//! # Examples
//!
//! ```
//! use link::power::{EnergyModel, full_swing_repeated, low_swing_link};
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! let full = full_swing_repeated(&p);
//! let low = low_swing_link(&p);
//! // The low-swing link is several times more energy-efficient.
//! assert!(full.energy_per_bit_j(0.5) > 2.5 * low.energy_per_bit_j(0.5));
//! ```

use msim::params::DesignParams;
use msim::units::Farad;

/// First-order energy model of one signaling scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Scheme label.
    pub name: &'static str,
    /// Capacitance swung through the full supply per transition.
    pub full_swing_cap: Farad,
    /// Capacitance swung `VDD × V_swing` per transition (the low-swing
    /// line charge drawn at VDD).
    pub low_swing_cap: Farad,
    /// Static current drawn continuously, expressed as an equivalent
    /// energy per bit time (receiver bias, weak driver).
    pub static_energy_per_bit: f64,
    supply: f64,
    swing: f64,
}

impl EnergyModel {
    /// Energy per bit in joules at data activity factor `alpha`
    /// (transitions per bit, 0.5 for random data).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `[0, 1]`.
    pub fn energy_per_bit_j(&self, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "activity factor range");
        let dynamic = alpha
            * (self.full_swing_cap.value() * self.supply * self.supply
                + self.low_swing_cap.value() * self.supply * self.swing);
        dynamic + self.static_energy_per_bit
    }

    /// Energy per bit in picojoules.
    pub fn energy_per_bit_pj(&self, alpha: f64) -> f64 {
        self.energy_per_bit_j(alpha) * 1e12
    }
}

/// Wire capacitance of the paper-class 10 mm route (per arm; the
/// differential link pays it twice).
const WIRE_CAP_F: f64 = 1e-12;

/// The full-swing repeated baseline: optimally repeated single-ended wire.
/// Repeater insertion for minimum delay adds roughly 40–60 % of the wire
/// capacitance as device capacitance; we use 50 %.
pub fn full_swing_repeated(p: &DesignParams) -> EnergyModel {
    EnergyModel {
        name: "full-swing repeated wire",
        full_swing_cap: Farad(WIRE_CAP_F * 1.5),
        low_swing_cap: Farad(0.0),
        static_energy_per_bit: 0.0,
        supply: p.supply.value(),
        swing: p.supply.value(),
    }
}

/// The paper's capacitively coupled low-swing differential link.
pub fn low_swing_link(p: &DesignParams) -> EnergyModel {
    // Two arms of line charged to V_swing through the coupling caps; the
    // pre-drivers swing the small coupling caps (2 × ~165 fF) full rail.
    let coupling = 2.0 * 165e-15;
    // Receiver bias + weak driver: ~100 µA static at 1.2 V over one UI.
    let static_power = 100e-6 * p.supply.value();
    EnergyModel {
        name: "low-swing capacitively coupled link",
        full_swing_cap: Farad(coupling),
        low_swing_cap: Farad(2.0 * WIRE_CAP_F),
        static_energy_per_bit: static_power * p.ui().value(),
        supply: p.supply.value(),
        swing: p.swing.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DesignParams {
        DesignParams::paper()
    }

    #[test]
    fn low_swing_wins_at_random_data() {
        let full = full_swing_repeated(&p()).energy_per_bit_pj(0.5);
        let low = low_swing_link(&p()).energy_per_bit_pj(0.5);
        assert!(full / low > 2.5, "only {:.1}x advantage", full / low);
        // Order of magnitude sanity: the literature the paper cites
        // reports fractions of a pJ/b for low-swing links.
        assert!(low < 1.0, "low-swing at {low:.2} pJ/b");
        assert!(full > 0.5, "full-swing at {full:.2} pJ/b");
    }

    #[test]
    fn weak_driver_enables_low_activity_factors() {
        // The paper: the weak driver "enables arbitrarily low data
        // activity factors" — at alpha -> 0 only the small static term
        // remains, unlike a repeated bus with leaky repeaters (modeled as
        // zero here, so compare the dynamic collapse).
        let low = low_swing_link(&p());
        let idle = low.energy_per_bit_pj(0.0);
        let busy = low.energy_per_bit_pj(0.5);
        assert!(idle < busy / 2.0);
        assert!(idle > 0.0, "static bias never disappears");
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let m = full_swing_repeated(&p());
        let e1 = m.energy_per_bit_j(0.25);
        let e2 = m.energy_per_bit_j(0.5);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity factor range")]
    fn bad_alpha_rejected() {
        let _ = full_swing_repeated(&p()).energy_per_bit_j(1.5);
    }
}
