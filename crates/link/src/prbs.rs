//! Pseudo-random binary sequence generators.
//!
//! The paper's BIST runs the interconnect "with random data at speed"; in
//! silicon that stimulus comes from an LFSR, not a software RNG. This
//! module provides the standard ITU-T PRBS polynomials as Fibonacci LFSRs
//! so the BIST stimulus (and its golden reference at the receiver) is a
//! faithful, hardware-realizable sequence.
//!
//! # Examples
//!
//! ```
//! use link::prbs::Prbs;
//!
//! let mut gen = Prbs::prbs7();
//! let bits: Vec<bool> = gen.by_ref().take(127).collect();
//! // A PRBS7 sequence repeats with period 2^7 - 1 = 127.
//! let again: Vec<bool> = gen.take(127).collect();
//! assert_eq!(bits, again);
//! ```

/// A Fibonacci LFSR PRBS generator.
///
/// Implements the standard `x^n + x^m + 1` polynomials. The all-ones seed
/// is used by default (the all-zero state is the lock-up state and is
/// rejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prbs {
    state: u32,
    /// Feedback tap positions (1-based bit indices).
    tap_a: u32,
    tap_b: u32,
    /// Register length.
    length: u32,
}

impl Prbs {
    /// Creates a PRBS with polynomial `x^length + x^tap + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is 0 or exceeds 31, or `tap` is not in
    /// `1..length`, or the seed is zero.
    pub fn new(length: u32, tap: u32, seed: u32) -> Prbs {
        assert!((1..=31).contains(&length), "LFSR length out of range");
        assert!(
            (1..length).contains(&tap),
            "tap must be inside the register"
        );
        let mask = (1u32 << length) - 1;
        assert!(seed & mask != 0, "the all-zero LFSR state locks up");
        Prbs {
            state: seed & mask,
            tap_a: length,
            tap_b: tap,
            length,
        }
    }

    /// PRBS7: `x^7 + x^6 + 1` (ITU-T O.150), period 127.
    pub fn prbs7() -> Prbs {
        Prbs::new(7, 6, (1 << 7) - 1)
    }

    /// PRBS15: `x^15 + x^14 + 1`, period 32767.
    pub fn prbs15() -> Prbs {
        Prbs::new(15, 14, (1 << 15) - 1)
    }

    /// PRBS23: `x^23 + x^18 + 1`, period 8388607.
    pub fn prbs23() -> Prbs {
        Prbs::new(23, 18, (1 << 23) - 1)
    }

    /// Sequence period `2^length - 1`.
    pub fn period(&self) -> u64 {
        (1u64 << self.length) - 1
    }

    /// Current register state.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Generates the next bit.
    pub fn next_bit(&mut self) -> bool {
        let a = (self.state >> (self.tap_a - 1)) & 1;
        let b = (self.state >> (self.tap_b - 1)) & 1;
        let fb = a ^ b;
        self.state = ((self.state << 1) | fb) & ((1 << self.length) - 1);
        fb == 1
    }

    /// Collects `n` bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

impl Iterator for Prbs {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn prbs7_has_full_period() {
        let mut gen = Prbs::prbs7();
        let mut states = HashSet::new();
        for _ in 0..127 {
            assert!(states.insert(gen.state()), "state repeated early");
            gen.next_bit();
        }
        // After a full period the state returns to the seed.
        assert_eq!(gen.state(), Prbs::prbs7().state());
        assert_eq!(gen.period(), 127);
    }

    #[test]
    fn prbs7_is_balanced() {
        // A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
        let bits = Prbs::prbs7().take_bits(127);
        let ones = bits.iter().filter(|b| **b).count();
        assert_eq!(ones, 64);
    }

    #[test]
    fn prbs15_period_spot_check() {
        let mut gen = Prbs::prbs15();
        let seed = gen.state();
        for _ in 0..32767 {
            gen.next_bit();
        }
        assert_eq!(gen.state(), seed);
    }

    #[test]
    fn prbs7_runs_distribution() {
        // Maximal-length property: runs of length k appear 2^(n-1-k)
        // times; the longest run of ones is n, of zeros n-1.
        let bits = Prbs::prbs7().take_bits(127 * 2);
        let mut max_ones = 0;
        let mut max_zeros = 0;
        let mut run = 0i32;
        let mut last = !bits[0];
        for &b in &bits {
            if b == last {
                run += 1;
            } else {
                run = 1;
                last = b;
            }
            if b {
                max_ones = max_ones.max(run);
            } else {
                max_zeros = max_zeros.max(run);
            }
        }
        assert_eq!(max_ones, 7);
        assert_eq!(max_zeros, 6);
    }

    #[test]
    fn deterministic_iterator() {
        let a: Vec<bool> = Prbs::prbs7().take(64).collect();
        let b: Vec<bool> = Prbs::prbs7().take(64).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "all-zero LFSR state")]
    fn zero_seed_rejected() {
        let _ = Prbs::new(7, 6, 0);
    }

    #[test]
    #[should_panic(expected = "tap must be inside")]
    fn bad_tap_rejected() {
        let _ = Prbs::new(7, 7, 1);
    }

    #[test]
    #[should_panic(expected = "length out of range")]
    fn bad_length_rejected() {
        let _ = Prbs::new(32, 6, 1);
    }
}
