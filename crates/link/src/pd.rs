//! Phase-domain view of the Alexander phase detector.
//!
//! The gate-level detector lives in `dsim::blocks::alexander`; the clock
//! synchronizer's loop simulation needs only its *decision function*: on a
//! data transition, is the sampling clock early or late relative to the
//! eye center? [`BangBangPd`] provides exactly that, including the wrapped
//! timing-error computation shared by the lock/BIST analyses.
//!
//! # Examples
//!
//! ```
//! use link::pd::{BangBangPd, PdDecision};
//!
//! let pd = BangBangPd::new();
//! // Sampling 0.1 UI before the eye center on a transition: speed up.
//! assert_eq!(pd.decide(-0.1, true), Some(PdDecision::Up));
//! // No transition: no information.
//! assert_eq!(pd.decide(-0.1, false), None);
//! ```

/// A bang-bang (early/late) decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdDecision {
    /// Sampling early: increase the sampling delay (pump `Vc` up).
    Up,
    /// Sampling late: decrease the sampling delay (pump `Vc` down).
    Down,
}

/// The bang-bang phase detector decision function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BangBangPd;

impl BangBangPd {
    /// Creates the detector.
    pub fn new() -> BangBangPd {
        BangBangPd
    }

    /// Wraps a phase difference into `(-0.5, 0.5]` UI.
    pub fn wrap_error(tau: f64, target: f64) -> f64 {
        let mut e = (tau - target) % 1.0;
        if e > 0.5 {
            e -= 1.0;
        } else if e <= -0.5 {
            e += 1.0;
        }
        e
    }

    /// Early/late decision for a wrapped timing error, valid only on a
    /// data transition (an Alexander PD is silent without one).
    pub fn decide(&self, error_ui: f64, transition: bool) -> Option<PdDecision> {
        if !transition {
            return None;
        }
        if error_ui < 0.0 {
            Some(PdDecision::Up)
        } else {
            Some(PdDecision::Down)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_keeps_half_open_interval() {
        assert!((BangBangPd::wrap_error(0.9, 0.1) - (-0.2)).abs() < 1e-12);
        assert!((BangBangPd::wrap_error(0.1, 0.9) - 0.2).abs() < 1e-12);
        assert!((BangBangPd::wrap_error(0.37, 0.37)).abs() < 1e-12);
        // Exactly opposite: lands on +0.5, not -0.5.
        assert!((BangBangPd::wrap_error(0.87, 0.37) - 0.5).abs() < 1e-12);
        // Multi-UI separations wrap.
        assert!((BangBangPd::wrap_error(2.47, 0.37) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn early_says_up_late_says_down() {
        let pd = BangBangPd::new();
        assert_eq!(pd.decide(-0.2, true), Some(PdDecision::Up));
        assert_eq!(pd.decide(0.2, true), Some(PdDecision::Down));
        // Zero error dithers toward Down by convention (bang-bang has no
        // dead zone).
        assert_eq!(pd.decide(0.0, true), Some(PdDecision::Down));
    }

    #[test]
    fn silent_without_transition() {
        let pd = BangBangPd::new();
        assert_eq!(pd.decide(0.3, false), None);
        assert_eq!(pd.decide(-0.3, false), None);
    }
}
