//! The clock synchronizer (Fig. 1): coarse digital + fine analog phase
//! correction.
//!
//! The receiver must sample the low-swing data at the center of the eye.
//! Two nested loops accomplish this:
//!
//! * the **fine loop** — Alexander PD → weak charge pump → `Vc` → VCDL —
//!   continuously trims the sampling phase;
//! * the **coarse loop** — window comparator on `Vc` → control FSM →
//!   strong charge pump + ring counter → switch matrix → DLL phase —
//!   steps to the next DLL phase and resets `Vc` into the window whenever
//!   the fine loop runs out of range.
//!
//! The simulation is phase-domain at one step per UI (the standard
//! behavioral abstraction for CDR loops): the sampling instant is
//! `τ = DLL phase + VCDL delay`, the PD compares it against the eye
//! center, and charge pumps integrate onto `Vc`. Every analog block
//! carries its fault hooks from `msim`, so the same simulation that
//! regenerates Fig. 2 also decides BIST detection for injected faults.
//!
//! # Examples
//!
//! ```
//! use link::synchronizer::{RunConfig, Synchronizer};
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! let mut sync = Synchronizer::new(&p);
//! let outcome = sync.run(&RunConfig::paper_bist(), None);
//! assert!(outcome.locked, "a healthy link must lock");
//! assert!(outcome.corrections <= p.dll_phases as u64 / 2 + 1);
//! ```

use rt::rng::Rng;

use msim::blocks::charge_pump::{BalanceNode, ChargePump, CpFaults};
use msim::blocks::comparator::{WindowComparator, WindowDecision};
use msim::blocks::dll::Dll;
use msim::blocks::vcdl::Vcdl;
use msim::params::DesignParams;
use msim::sim::Trace;
use msim::units::Volt;

use crate::pd::{BangBangPd, PdDecision};

/// Run parameters for a lock-acquisition / BIST simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Number of bit cycles to simulate.
    pub cycles: u64,
    /// Eye-center position in UI the loop must find.
    pub eye_center_ui: f64,
    /// Healthy half-width of the eye at the sampler, in UI.
    pub eye_half_width_ui: f64,
    /// RMS sampling jitter, in UI.
    pub jitter_rms_ui: f64,
    /// Slow drift of the eye center in UI per cycle (voltage/temperature
    /// drift of the channel delay). The paper's *background* synchronizer
    /// tracks this without interrupting traffic — the §I argument against
    /// foreground-calibrated receivers.
    pub eye_drift_ui_per_cycle: f64,
    /// Consecutive clean cycles required to declare lock.
    pub lock_window: u64,
    /// PRBS seed.
    pub seed: u64,
}

impl RunConfig {
    /// The paper's BIST run: random data at speed, 2 µs budget plus
    /// padding to observe post-lock behaviour.
    pub fn paper_bist() -> RunConfig {
        RunConfig {
            cycles: 8000,
            eye_center_ui: 0.37,
            eye_half_width_ui: 0.30,
            jitter_rms_ui: 0.045,
            eye_drift_ui_per_cycle: 0.0,
            lock_window: 500,
            seed: 0x1057,
        }
    }
}

/// Result of a lock-acquisition run.
#[derive(Debug, Clone, PartialEq)]
pub struct LockOutcome {
    /// Whether a sustained clean interval was reached.
    pub locked: bool,
    /// Cycle at which the clean interval began.
    pub lock_cycle: Option<u64>,
    /// Coarse-correction requests issued (what the lock detector counts).
    pub corrections: u64,
    /// Sampling errors over the whole run.
    pub data_errors: u64,
    /// Sampling errors after the lock point.
    pub errors_after_lock: u64,
    /// Final control voltage.
    pub final_vc: Volt,
    /// Final DLL phase selection.
    pub final_phase: usize,
    /// Settled charge-balance node voltage (watched by the CP-BIST).
    pub vp: Volt,
}

/// The behavioral clock synchronizer with fault hooks.
#[derive(Debug, Clone, PartialEq)]
pub struct Synchronizer {
    p: DesignParams,
    dll: Dll,
    vcdl: Vcdl,
    window: WindowComparator,
    weak: ChargePump,
    strong: ChargePump,
    balance: BalanceNode,
    pd: BangBangPd,
    clock_dead: bool,
    clock_degradation: f64,
    vc_pinned: Option<Volt>,
    vc: Volt,
    phase: usize,
}

impl Synchronizer {
    /// Creates a healthy synchronizer at the given design point, starting
    /// from DLL phase 0 with `Vc` at mid-window.
    pub fn new(p: &DesignParams) -> Synchronizer {
        Synchronizer {
            p: p.clone(),
            dll: Dll::new(p.dll_phases),
            vcdl: Vcdl::from_params(p),
            window: WindowComparator::new(p.window_low, p.window_high),
            weak: ChargePump::new(p.weak_cp_current, p.loop_cap, p.supply),
            strong: ChargePump::new(p.strong_cp_current, p.loop_cap, p.supply),
            balance: BalanceNode::new(p.vp_nominal),
            pd: BangBangPd::new(),
            clock_dead: false,
            clock_degradation: 0.0,
            vc_pinned: None,
            vc: p.vmid,
            phase: 0,
        }
    }

    /// Replaces the VCDL (fault hook).
    pub fn with_vcdl(mut self, vcdl: Vcdl) -> Synchronizer {
        self.vcdl = vcdl;
        self
    }

    /// Replaces the window comparator (fault hook).
    pub fn with_window(mut self, window: WindowComparator) -> Synchronizer {
        self.window = window;
        self
    }

    /// Installs weak charge-pump faults.
    pub fn with_weak_faults(mut self, faults: CpFaults) -> Synchronizer {
        self.weak = ChargePump::new(self.p.weak_cp_current, self.p.loop_cap, self.p.supply)
            .with_faults(faults);
        self
    }

    /// Installs strong charge-pump faults.
    pub fn with_strong_faults(mut self, faults: CpFaults) -> Synchronizer {
        self.strong = ChargePump::new(self.p.strong_cp_current, self.p.loop_cap, self.p.supply)
            .with_faults(faults);
        self
    }

    /// Installs a charge-balance settling error (CP-BIST observable).
    pub fn with_balance_drift(mut self, dv: Volt) -> Synchronizer {
        self.balance = BalanceNode::new(self.p.vp_nominal).with_drift(dv);
        self
    }

    /// Kills the sampling-clock path (VCDL/clock tree dead).
    pub fn with_clock_dead(mut self) -> Synchronizer {
        self.clock_dead = true;
        self
    }

    /// Degrades the sampling clock (duty/edge distortion); `severity` in
    /// `[0, 1]` proportionally consumes eye margin.
    pub fn with_clock_degradation(mut self, severity: f64) -> Synchronizer {
        self.clock_degradation = severity.clamp(0.0, 1.0);
        self
    }

    /// Pins the control voltage (loop-filter capacitor short).
    pub fn with_vc_pinned(mut self, v: Volt) -> Synchronizer {
        self.vc_pinned = Some(v);
        self.vc = v;
        self
    }

    /// Sets the starting DLL phase (BIST sweeps all initial conditions).
    ///
    /// # Panics
    ///
    /// Panics if the phase index is out of range.
    pub fn with_initial_phase(mut self, phase: usize) -> Synchronizer {
        assert!(phase < self.p.dll_phases, "initial phase out of range");
        self.phase = phase;
        self
    }

    /// Sets the starting control voltage.
    pub fn with_initial_vc(mut self, vc: Volt) -> Synchronizer {
        if self.vc_pinned.is_none() {
            self.vc = vc;
        }
        self
    }

    /// Current sampling instant in UI (phase + VCDL delay, wrapped).
    pub fn sampling_tau_ui(&self) -> f64 {
        (self.dll.phase_ui(self.phase) + self.vcdl.delay_ui(self.vc)).fract()
    }

    /// Current control voltage.
    pub fn vc(&self) -> Volt {
        self.vc
    }

    /// Current DLL phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Runs the loop for `rc.cycles` bit times. When `trace` is provided,
    /// records channels `vc`, `phase`, `vl` and `vh` once per UI — the
    /// data behind the paper's Fig. 2.
    pub fn run(&mut self, rc: &RunConfig, mut trace: Option<&mut Trace>) -> LockOutcome {
        let mut rng = Rng::seed_from_u64(rc.seed);
        let ui = self.p.ui();
        let divider = self.p.divider_ratio as u64;
        let eff_half = rc.eye_half_width_ui * (1.0 - self.clock_degradation);

        let mut corrections = 0u64;
        let mut data_errors = 0u64;
        let mut errors_after_lock = 0u64;
        let mut clean = 0u64;
        let mut lock_cycle: Option<u64> = None;
        // Which side of the window the last out-of-window decision was on;
        // a new excursion (after re-entry or on the other side) counts as a
        // fresh coarse-correction request.
        let mut last_outside: Option<bool> = None;

        for cycle in 0..rc.cycles {
            let jitter = rng.gaussian() * rc.jitter_rms_ui;
            let tau = self.sampling_tau_ui();
            let center = rc.eye_center_ui + rc.eye_drift_ui_per_cycle * cycle as f64;
            let err = BangBangPd::wrap_error(tau, center);
            let observed = err + jitter;

            // Sampling correctness.
            let sample_ok = !self.clock_dead && observed.abs() <= eff_half;
            let mut dirty = !sample_ok;
            if !sample_ok {
                data_errors += 1;
                if lock_cycle.is_some() {
                    errors_after_lock += 1;
                }
            }

            // Fine loop: PD decision on data transitions.
            let transition = rng.next_bool();
            let decision = if self.clock_dead {
                None
            } else {
                self.pd.decide(observed, transition)
            };
            let (up, dn) = match decision {
                Some(PdDecision::Up) => (true, false),
                Some(PdDecision::Down) => (false, true),
                None => (false, false),
            };
            self.vc = self.weak.step(self.vc, up, dn, ui);
            if let Some(pin) = self.vc_pinned {
                self.vc = pin;
            }

            // Coarse loop on the divided clock.
            let mut win_code = 0.0; // 0 = no check this cycle
            if (cycle + 1) % divider == 0 {
                let decision = self.window.evaluate(self.vc);
                win_code = match decision {
                    WindowDecision::Inside => 1.0,
                    WindowDecision::BelowLow => 2.0,
                    WindowDecision::AboveHigh => 3.0,
                };
                match decision {
                    WindowDecision::Inside => last_outside = None,
                    WindowDecision::AboveHigh => {
                        if last_outside != Some(true) {
                            corrections += 1;
                            self.phase = self.dll.next_phase(self.phase, true);
                            last_outside = Some(true);
                        }
                        // Strong reset toward the window.
                        self.vc = self.strong.step(self.vc, false, true, ui * divider as f64);
                        dirty = true;
                    }
                    WindowDecision::BelowLow => {
                        if last_outside != Some(false) {
                            corrections += 1;
                            self.phase = self.dll.next_phase(self.phase, false);
                            last_outside = Some(false);
                        }
                        self.vc = self.strong.step(self.vc, true, false, ui * divider as f64);
                        dirty = true;
                    }
                }
                if let Some(pin) = self.vc_pinned {
                    self.vc = pin;
                }
            }

            // Lock bookkeeping.
            if dirty {
                clean = 0;
            } else {
                clean += 1;
                if clean == rc.lock_window && lock_cycle.is_none() {
                    lock_cycle = Some(cycle + 1 - rc.lock_window);
                }
            }

            if let Some(t) = trace.as_deref_mut() {
                t.record("vc", self.vc);
                t.record("phase", Volt(self.phase as f64));
                t.record("vl", self.p.window_low);
                t.record("vh", self.p.window_high);
                // Window decision at divided-clock checks (0 = no check,
                // 1 = inside, 2 = below, 3 = above) — the hand-off record
                // that lets the gate-level chain B replay this run.
                t.record("win", Volt(win_code));
            }
        }

        LockOutcome {
            locked: lock_cycle.is_some(),
            lock_cycle,
            corrections,
            data_errors,
            errors_after_lock,
            final_vc: self.vc,
            final_phase: self.phase,
            vp: self.balance.settled(),
        }
    }
}

/// Extracts the per-divided-clock window-comparator decision stream from a
/// traced run: the `win` channel codes recorded by [`Synchronizer::run`]
/// (1 = inside, 2 = below, 3 = above), with the 0 "no check this cycle"
/// samples dropped. This is the hand-off record that gate-level replays
/// (`dft::chain_b`) and the conformance oracles consume.
pub fn decisions_from_trace(trace: &Trace) -> Vec<u8> {
    trace
        .channel("win")
        .expect("win channel recorded")
        .samples()
        .iter()
        .map(|v| v.value() as u8)
        .filter(|&d| d != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::effects::PumpDir;
    use msim::units::Sec;

    fn paper() -> DesignParams {
        DesignParams::paper()
    }

    #[test]
    fn healthy_link_locks_within_budget() {
        let p = paper();
        let mut sync = Synchronizer::new(&p);
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(out.locked);
        assert!(out.lock_cycle.unwrap() <= p.bist_lock_budget);
        assert!(out.corrections <= p.dll_phases as u64 / 2);
        assert_eq!(out.errors_after_lock, 0);
        // Locked sampling point sits at the eye center.
        let tau = sync.sampling_tau_ui();
        let err = BangBangPd::wrap_error(tau, 0.37);
        assert!(err.abs() < 0.02, "residual error {err}");
    }

    #[test]
    fn locks_from_every_initial_phase() {
        let p = paper();
        for phase0 in 0..p.dll_phases {
            let mut sync = Synchronizer::new(&p).with_initial_phase(phase0);
            let out = sync.run(&RunConfig::paper_bist(), None);
            assert!(out.locked, "failed to lock from phase {phase0}");
            assert!(
                out.corrections <= p.dll_phases as u64 / 2 + 1,
                "phase {phase0}: {} corrections",
                out.corrections
            );
        }
    }

    #[test]
    fn dead_clock_never_locks() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_clock_dead();
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(!out.locked);
        assert_eq!(out.data_errors, RunConfig::paper_bist().cycles);
    }

    #[test]
    fn stuck_vcdl_at_zero_limit_cycles_the_coarse_loop() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_vcdl(Vcdl::from_params(&p).with_stuck(0.0));
        let out = sync.run(&RunConfig::paper_bist(), None);
        // The fine loop is dead and no frozen grid point matches the eye
        // center: the PD drifts Vc to a threshold over and over, coarse
        // corrections accumulate and the 3-bit lock detector saturates.
        assert!(
            out.corrections > 7,
            "only {} corrections with a stuck VCDL",
            out.corrections
        );
    }

    #[test]
    fn stuck_vcdl_near_eye_center_is_an_honest_escape() {
        // Frozen at frac 0.5 the delay is 0.065 UI: phase 3 + 0.065 lands
        // 0.005 UI from the 0.37 eye center — within the jitter dither, so
        // the loop reaches a benign equilibrium. The BIST misses this
        // particular stuck point; it contributes to the gate-open escape
        // row of Table I.
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_vcdl(Vcdl::from_params(&p).with_stuck(0.5));
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(out.locked);
        assert!(out.corrections <= 7, "{} corrections", out.corrections);
    }

    #[test]
    fn severe_clock_degradation_causes_errors() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_clock_degradation(0.7);
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(out.data_errors > 50, "only {} errors", out.data_errors);
    }

    #[test]
    fn mild_clock_degradation_is_tolerated() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_clock_degradation(0.3);
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(out.locked);
        assert_eq!(out.errors_after_lock, 0);
    }

    #[test]
    fn weak_pump_leak_disturbs_lock() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_weak_faults(CpFaults {
            always_on: Some(PumpDir::Up),
            ..CpFaults::none()
        });
        let out = sync.run(&RunConfig::paper_bist(), None);
        // The leak drags Vc out of the window over and over.
        assert!(
            out.corrections > p.dll_phases as u64 / 2 || !out.locked,
            "leak not observable: {out:?}"
        );
    }

    #[test]
    fn oversized_strong_pump_never_settles() {
        // The paper's masked fault on the strong pump: DS-shorted current
        // source, caught at speed by the lock detector.
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_strong_faults(CpFaults {
            up_scale: 20.0,
            down_scale: 20.0,
            ..CpFaults::none()
        });
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!(
            out.corrections > 7,
            "overshooting resets must re-trigger corrections, got {}",
            out.corrections
        );
    }

    #[test]
    fn pinned_vc_fails() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_vc_pinned(Volt::ZERO);
        let out = sync.run(&RunConfig::paper_bist(), None);
        // Vc at ground: below the window every divided clock, phase walks,
        // nothing converges.
        assert!(!out.locked || out.corrections > 7, "{out:?}");
    }

    #[test]
    fn balance_drift_reported() {
        let p = paper();
        let mut sync = Synchronizer::new(&p).with_balance_drift(Volt::from_mv(-200.0));
        let out = sync.run(&RunConfig::paper_bist(), None);
        assert!((out.vp.value() - 0.4).abs() < 1e-9);
        // The main loop is unaffected: still locks.
        assert!(out.locked);
    }

    #[test]
    fn trace_records_fig2_channels() {
        let p = paper();
        let mut sync = Synchronizer::new(&p);
        let mut trace = Trace::new(Sec::from_ps(400.0));
        let rc = RunConfig {
            cycles: 64,
            ..RunConfig::paper_bist()
        };
        sync.run(&rc, Some(&mut trace));
        for ch in ["vc", "phase", "vl", "vh"] {
            assert_eq!(trace.channel(ch).unwrap().len(), 64, "channel {ch}");
        }
    }

    #[test]
    fn narrowed_window_still_locks_but_differently() {
        // A -100 mV shift on VH narrows the window; the loop must still
        // converge for the default eye (the honest partial-escape case).
        let p = paper();
        let window = WindowComparator::new(p.window_low, p.window_high)
            .with_high_shift(Volt::from_mv(-100.0));
        let mut sync = Synchronizer::new(&p).with_window(window);
        let out = sync.run(&RunConfig::paper_bist(), None);
        // Either it locks (escape) or corrections blow up (detected):
        // both are legitimate, but the run must terminate with a sane
        // outcome either way.
        assert!(out.locked || out.corrections > 0);
    }

    #[test]
    #[should_panic(expected = "initial phase out of range")]
    fn bad_initial_phase_panics() {
        let p = paper();
        let _ = Synchronizer::new(&p).with_initial_phase(10);
    }

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let p = paper();
        let rc = RunConfig::paper_bist();
        let a = Synchronizer::new(&p).run(&rc, None);
        let b = Synchronizer::new(&p).run(&rc, None);
        assert_eq!(a, b);
        let other = Synchronizer::new(&p).run(
            &RunConfig {
                seed: rc.seed + 1,
                ..rc
            },
            None,
        );
        assert!(a.lock_cycle != other.lock_cycle || a.final_vc != other.final_vc);
    }
}
