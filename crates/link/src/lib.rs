//! # link — the repeaterless low-swing on-chip interconnect
//!
//! The full PHY of the reproduction of *"Testable Design of Repeaterless
//! Low Swing On-Chip Interconnect"* (Kadayinti & Sharma, DATE 2016):
//!
//! * [`tx`] — the capacitively coupled feed-forward equalizing transmitter
//!   with its weak driver and DFT half-cycle latch (Fig. 3),
//! * [`channel`] — the distributed-RC interconnect (backward-Euler
//!   π-ladder),
//! * [`rx`] — the receiver termination with the DC-test comparators and
//!   the bias-comparison window comparator (Figs. 4–6),
//! * [`pd`] — the phase-domain Alexander decision function,
//! * [`synchronizer`] — the coarse/fine clock recovery loop (Fig. 1),
//!   whose lock-acquisition trace is the paper's Fig. 2, with
//!   environmental-drift tracking,
//! * [`crossing`] — the §II half-cycle domain-crossing rule,
//! * [`eye`] — eye-diagram accumulation and ASCII rendering,
//! * [`ber`] — analytic BER bathtubs and timing margins,
//! * [`prbs`] — LFSR PRBS stimulus (ITU-T O.150),
//! * [`power`] — energy-per-bit accounting vs a repeated full-swing wire,
//! * [`dll_bist`] — the stand-alone DLL phase-spacing BIST the paper
//!   defers to its refs \[11\], \[12\],
//! * [`netlists`] — the design's structural netlists (fault universe),
//! * [`config`] — the link design point,
//! * [`farm`] — fabric-scale sweep grids with crosstalk-coupled lanes,
//!   run as sharded [`rt::exec`] jobs.
//!
//! [`LowSwingLink`] wires the transmitter to the differential channel for
//! waveform-level studies (eye diagrams, equalization ablation); the
//! synchronizer runs in the phase domain on top of the measured eye.
//!
//! # Examples
//!
//! ```
//! use link::{config::LinkConfig, LowSwingLink};
//! use rt::rng::Rng;
//!
//! let mut link = LowSwingLink::new(LinkConfig::paper())?;
//! let mut rng = Rng::seed_from_u64(1);
//! let bits: Vec<bool> = (0..256).map(|_| rng.next_bool()).collect();
//! let eye = link.eye(&bits);
//! let (_, opening) = eye.best();
//! assert!(opening.mv() > 10.0, "equalized eye must be open, got {opening}");
//! # Ok::<(), msim::params::ParamsError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ber;
pub mod channel;
pub mod config;
pub mod crossing;
pub mod dll_bist;
pub mod eye;
pub mod farm;
pub mod netlists;
pub mod pd;
pub mod power;
pub mod prbs;
pub mod rx;
pub mod synchronizer;
pub mod tx;

use msim::params::ParamsError;
use msim::signal::Waveform;
use msim::units::Volt;

use channel::RcLine;
use config::LinkConfig;
use eye::EyeDiagram;
use tx::Transmitter;

/// The assembled transmitter + differential channel.
#[derive(Debug, Clone, PartialEq)]
pub struct LowSwingLink {
    cfg: LinkConfig,
    tx: Transmitter,
    line_p: RcLine,
    line_m: RcLine,
}

impl LowSwingLink {
    /// Builds the link from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] when the configuration violates a design
    /// rule (see [`LinkConfig::validate`]).
    pub fn new(cfg: LinkConfig) -> Result<LowSwingLink, ParamsError> {
        cfg.validate()?;
        let tx = Transmitter::new(cfg.vcm(), cfg.params.swing, cfg.ffe_boost);
        let mk_line = || {
            let mut line = RcLine::new(
                cfg.channel.r_total,
                cfg.channel.c_total,
                cfg.channel.segments,
                cfg.channel.r_term,
            );
            line.set_termination_bias(cfg.vcm());
            line
        };
        let line_p = mk_line();
        let line_m = mk_line();
        Ok(LowSwingLink {
            cfg,
            tx,
            line_p,
            line_m,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Mutable access to the transmitter (e.g. to enable the DFT
    /// half-cycle latch).
    pub fn tx_mut(&mut self) -> &mut Transmitter {
        &mut self.tx
    }

    /// Transmits a bit sequence and returns the received *differential*
    /// waveform, `oversample` points per UI.
    pub fn transmit(&mut self, bits: &[bool]) -> Waveform {
        let os = self.cfg.oversample;
        let dt = self.cfg.params.ui() / os as f64;
        let mut wave = Waveform::new(dt);
        for &bit in bits {
            let (vp, vm) = self.tx.drive_differential(bit);
            for _ in 0..os {
                let op = self.line_p.step(vp, dt);
                let om = self.line_m.step(vm, dt);
                wave.push(op - om);
            }
        }
        wave
    }

    /// Transmits `bits` and folds the received waveform into an eye
    /// diagram (latency-aligned automatically).
    pub fn eye(&mut self, bits: &[bool]) -> EyeDiagram {
        let wave = self.transmit(bits);
        EyeDiagram::from_waveform(&wave, bits, self.cfg.oversample, 4)
    }

    /// The settled differential level at the receiver for a static bit —
    /// the quantity the paper's two-vector DC test observes: the full
    /// differential swing through the line/termination divider (healthy:
    /// ±30 mV against the 15 mV comparator offset).
    pub fn dc_differential(&mut self, bit: bool) -> Volt {
        let level = self.tx.dc_level(bit) - self.tx.vcm();
        let (vp, vm) = (self.tx.vcm() + level, self.tx.vcm() - level);
        let dt = self.cfg.params.ui();
        let mut diff = Volt::ZERO;
        for _ in 0..5000 {
            let op = self.line_p.step(vp, dt);
            let om = self.line_m.step(vm, dt);
            diff = op - om;
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rng::Rng;

    fn prbs(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_bool()).collect()
    }

    #[test]
    fn equalized_eye_is_open() {
        let mut link = LowSwingLink::new(LinkConfig::paper()).unwrap();
        let eye = link.eye(&prbs(512, 3));
        let (_, opening) = eye.best();
        assert!(opening.mv() > 10.0, "equalized eye closed: {opening}");
    }

    #[test]
    fn unequalized_eye_is_much_worse() {
        // The ablation motivating the FFE: same channel, boost off.
        let mut cfg = LinkConfig::paper();
        cfg.ffe_boost = 0.0;
        let mut plain = LowSwingLink::new(cfg).unwrap();
        let plain_eye = plain.eye(&prbs(512, 3));

        let mut eq = LowSwingLink::new(LinkConfig::paper()).unwrap();
        let eq_eye = eq.eye(&prbs(512, 3));

        let (_, plain_open) = plain_eye.best();
        let (_, eq_open) = eq_eye.best();
        assert!(
            eq_open.value() > plain_open.value() + 0.005,
            "FFE must widen the eye: eq {eq_open} vs plain {plain_open}"
        );
    }

    #[test]
    fn dc_differential_matches_divider() {
        let mut link = LowSwingLink::new(LinkConfig::paper()).unwrap();
        let one = link.dc_differential(true);
        // Full differential swing 60 mV through the 0.5 divider: 30 mV.
        assert!((one.mv() - 30.0).abs() < 1.0, "got {one}");
        let zero = link.dc_differential(false);
        assert!((zero.mv() + 30.0).abs() < 1.0, "got {zero}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = LinkConfig::paper();
        cfg.oversample = 0;
        assert!(LowSwingLink::new(cfg).is_err());
    }

    #[test]
    fn transmit_length_matches_bits_times_oversample() {
        let mut link = LowSwingLink::new(LinkConfig::paper()).unwrap();
        let wave = link.transmit(&prbs(32, 5));
        assert_eq!(wave.len(), 32 * 16);
    }

    #[test]
    fn half_cycle_latch_accessible() {
        let mut link = LowSwingLink::new(LinkConfig::paper()).unwrap();
        link.tx_mut().set_half_cycle_delay(true);
        assert!(link.tx_mut().half_cycle_delay());
    }
}
