//! Fabric-scale link-farm parameter sweeps.
//!
//! The paper characterizes one repeaterless low-swing link; a real
//! interconnect fabric is a *grid* of them — many wire lengths, swing
//! voltages, segmentations, mismatch populations, data rates, lane
//! counts and neighbor-coupling regimes. This module turns that grid
//! into a declarative, deterministic workload:
//!
//! * [`FarmAxes`] / [`FarmGrid`] — the sweep axes and their validated,
//!   fingerprinted cartesian product. Cell enumeration is row-major in a
//!   fixed axis order, so the grid is a pure function of the axes and a
//!   seed — never of thread count or submission order.
//! * [`FarmCell`] — one configuration point. [`FarmCell::evaluate`]
//!   simulates the cell's victim lane twice — neighbors quiet
//!   (`coupling = 0`) and neighbors switching through the coupling
//!   capacitance ([`RcLine::step_with_aggressor`]) — and scores the eye
//!   opening, a first-order BER, and a mismatch Monte-Carlo detection
//!   census ([`CellRecord`]).
//! * [`LinkFarm`] — the whole sweep as one sharded [`rt::exec`] job:
//!   checkpointable, panic-isolated, byte-identical at any thread count,
//!   instrumented with an [`rt::obs`] span per grid cell.
//!
//! The crosstalk mechanism is the victim's *asymmetric* exposure: the
//! aggressor's near wire couples the full `coupling · C_total` into the
//! victim arm facing it but only [`FAR_ARM_COUPLING`] of that into the
//! far arm, so — unlike the perfectly common-mode textbook case — a
//! differential residue survives and closes the eye. A cell with one
//! lane has no neighbors and is immune regardless of the coupling axis.
//!
//! # Examples
//!
//! ```
//! use link::farm::{FarmAxes, FarmGrid, LinkFarm};
//! use rt::exec::RetryPolicy;
//!
//! let mut axes = FarmAxes::paper_point();
//! axes.couplings = vec![0.0, 0.3];
//! axes.lanes = vec![4];
//! let farm = LinkFarm::new(FarmGrid::new(axes, 7).unwrap());
//! let report = farm.run(2, &RetryPolicy::none(), None);
//! assert!(report.is_complete());
//! let quiet = &report.records[0];
//! let noisy = &report.records[1];
//! assert!(noisy.eye_coupled_mv < quiet.eye_coupled_mv, "coupling must close the eye");
//! ```

use crate::ber::BerModel;
use crate::channel::RcLine;
use crate::config::{ChannelConfig, LinkConfig};
use crate::eye::EyeDiagram;
use crate::tx::Transmitter;
use msim::params::DesignParams;
use msim::signal::Waveform;
use msim::units::{Farad, Hertz, Ohm, Volt};
use rt::exec::{self, Checkpoint, ExecReport, RetryPolicy, Shard, ShardJob};
use rt::rng::Rng;

/// Version stamp mixed into every grid fingerprint; bump whenever the
/// cell evaluation or record encoding changes meaning.
pub const FARM_VERSION: u64 = 1;

/// Grid cells per [`rt::exec`] shard.
pub const FARM_SHARD_SIZE: usize = 64;

/// Series resistance per millimeter of minimum-pitch wire (Ω/mm); 10 mm
/// reproduces [`ChannelConfig::long_wire`]'s 2 kΩ.
pub const R_PER_MM: f64 = 200.0;

/// Shunt capacitance per millimeter of wire (F/mm); 10 mm reproduces
/// [`ChannelConfig::long_wire`]'s 1 pF.
pub const C_PER_MM: f64 = 0.1e-12;

/// Fraction of the near-arm coupling capacitance that also reaches the
/// victim's far arm. 1.0 would be the perfectly common-mode case the
/// differential link rejects; routed pairs see less than that, and the
/// difference is the differential crosstalk residue.
pub const FAR_ARM_COUPLING: f64 = 0.35;

/// PRBS bits simulated per cell (victim and aggressor streams).
pub const BITS_PER_CELL: usize = 96;

/// Mismatch Monte-Carlo instances scored per cell.
pub const MISMATCH_INSTANCES: usize = 8;

/// Waveform samples per UI used by cell evaluation.
const CELL_OVERSAMPLE: usize = 8;

/// BER target for the per-cell timing-margin record.
const MARGIN_TARGET_BER: f64 = 1e-9;

/// Bytes of one encoded [`CellRecord`] in a checkpoint payload.
pub const RECORD_BYTES: usize = 4 + 4 * 8 + 4 * 4;

/// A grid-validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarmError {
    /// An axis holds no values; the cartesian product would be empty.
    EmptyAxis(&'static str),
    /// An axis value is NaN or infinite.
    NonFinite(&'static str),
    /// An axis value lies outside its physical range.
    OutOfRange(&'static str),
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::EmptyAxis(axis) => write!(f, "axis {axis:?} is empty"),
            FarmError::NonFinite(axis) => write!(f, "axis {axis:?} holds a non-finite value"),
            FarmError::OutOfRange(axis) => write!(f, "axis {axis:?} value out of range"),
        }
    }
}

impl std::error::Error for FarmError {}

/// The declarative sweep axes. The cartesian product in this field
/// order — lengths outermost, couplings innermost — is the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmAxes {
    /// Wire lengths in millimeters (scale the channel R and C).
    pub lengths_mm: Vec<f64>,
    /// Differential swing voltages in millivolts.
    pub swings_mv: Vec<f64>,
    /// π-segment counts of the channel model.
    pub segments: Vec<usize>,
    /// Comparator-offset mismatch σ in millivolts.
    pub sigmas_mv: Vec<f64>,
    /// Data rates in Gbps.
    pub rates_gbps: Vec<f64>,
    /// Lane counts of the deployment (1 lane ⇒ no aggressors).
    pub lanes: Vec<usize>,
    /// Neighbor coupling factors: coupling capacitance per aggressor as
    /// a fraction of the victim arm's total shunt capacitance.
    pub couplings: Vec<f64>,
}

impl FarmAxes {
    /// The degenerate one-point grid at the paper's design point.
    pub fn paper_point() -> FarmAxes {
        FarmAxes {
            lengths_mm: vec![10.0],
            swings_mv: vec![60.0],
            segments: vec![10],
            sigmas_mv: vec![0.0],
            rates_gbps: vec![2.5],
            lanes: vec![2],
            couplings: vec![0.0],
        }
    }

    /// Checks every axis: non-empty, finite, physically plausible.
    ///
    /// # Errors
    ///
    /// Returns the first [`FarmError`] found, axis by axis in field
    /// order.
    pub fn validate(&self) -> Result<(), FarmError> {
        let check_f = |name, vals: &[f64], lo: f64, hi: f64| {
            if vals.is_empty() {
                return Err(FarmError::EmptyAxis(name));
            }
            for &v in vals {
                if !v.is_finite() {
                    return Err(FarmError::NonFinite(name));
                }
                if !(lo..=hi).contains(&v) {
                    return Err(FarmError::OutOfRange(name));
                }
            }
            Ok(())
        };
        let check_u = |name, vals: &[usize], lo: usize, hi: usize| {
            if vals.is_empty() {
                return Err(FarmError::EmptyAxis(name));
            }
            if vals.iter().any(|v| !(lo..=hi).contains(v)) {
                return Err(FarmError::OutOfRange(name));
            }
            Ok(())
        };
        check_f("lengths_mm", &self.lengths_mm, 0.1, 50.0)?;
        check_f("swings_mv", &self.swings_mv, 5.0, 400.0)?;
        check_u("segments", &self.segments, 1, 64)?;
        check_f("sigmas_mv", &self.sigmas_mv, 0.0, 50.0)?;
        check_f("rates_gbps", &self.rates_gbps, 0.1, 20.0)?;
        check_u("lanes", &self.lanes, 1, 1024)?;
        check_f("couplings", &self.couplings, 0.0, 2.0)?;
        Ok(())
    }

    /// Number of grid cells (the product of the axis lengths).
    pub fn total(&self) -> usize {
        self.lengths_mm.len()
            * self.swings_mv.len()
            * self.segments.len()
            * self.sigmas_mv.len()
            * self.rates_gbps.len()
            * self.lanes.len()
            * self.couplings.len()
    }
}

/// A validated grid: axes plus the base seed of the per-cell RNG
/// substreams.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmGrid {
    axes: FarmAxes,
    seed: u64,
}

impl FarmGrid {
    /// Validates `axes` and freezes the grid.
    ///
    /// # Errors
    ///
    /// Returns [`FarmError`] when any axis is empty, non-finite or out
    /// of range (see [`FarmAxes::validate`]).
    pub fn new(axes: FarmAxes, seed: u64) -> Result<FarmGrid, FarmError> {
        axes.validate()?;
        Ok(FarmGrid { axes, seed })
    }

    /// The axes.
    pub fn axes(&self) -> &FarmAxes {
        &self.axes
    }

    /// The Monte-Carlo base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cells.
    pub fn total(&self) -> usize {
        self.axes.total()
    }

    /// The cell at row-major index `index` (couplings vary fastest,
    /// lengths slowest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= total()`.
    pub fn cell(&self, index: usize) -> FarmCell {
        assert!(index < self.total(), "cell index out of range");
        let a = &self.axes;
        let mut rem = index;
        let take = |rem: &mut usize, n: usize| {
            let i = *rem % n;
            *rem /= n;
            i
        };
        // Unwind innermost-first.
        let i_coupling = take(&mut rem, a.couplings.len());
        let i_lane = take(&mut rem, a.lanes.len());
        let i_rate = take(&mut rem, a.rates_gbps.len());
        let i_sigma = take(&mut rem, a.sigmas_mv.len());
        let i_seg = take(&mut rem, a.segments.len());
        let i_swing = take(&mut rem, a.swings_mv.len());
        let i_len = take(&mut rem, a.lengths_mm.len());
        FarmCell {
            index,
            length_mm: a.lengths_mm[i_len],
            swing_mv: a.swings_mv[i_swing],
            segments: a.segments[i_seg],
            sigma_mv: a.sigmas_mv[i_sigma],
            rate_gbps: a.rates_gbps[i_rate],
            lanes: a.lanes[i_lane],
            coupling: a.couplings[i_coupling],
        }
    }

    /// The grid's content address: [`rt::exec::fingerprint`] over the
    /// farm version, the seed, and every axis (length-prefixed, values
    /// as IEEE-754 bit patterns). Two grids with the same axes in the
    /// same order share it; reordering values within an axis does not,
    /// because order is the grid order.
    pub fn fingerprint(&self) -> u64 {
        let a = &self.axes;
        let mut parts = vec![FARM_VERSION, self.seed];
        let push_f = |vals: &[f64], parts: &mut Vec<u64>| {
            parts.push(vals.len() as u64);
            parts.extend(vals.iter().map(|v| v.to_bits()));
        };
        push_f(&a.lengths_mm, &mut parts);
        push_f(&a.swings_mv, &mut parts);
        parts.push(a.segments.len() as u64);
        parts.extend(a.segments.iter().map(|&v| v as u64));
        push_f(&a.sigmas_mv, &mut parts);
        push_f(&a.rates_gbps, &mut parts);
        parts.push(a.lanes.len() as u64);
        parts.extend(a.lanes.iter().map(|&v| v as u64));
        push_f(&a.couplings, &mut parts);
        exec::fingerprint(&parts)
    }
}

/// One grid configuration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarmCell {
    /// Row-major index in the grid.
    pub index: usize,
    /// Wire length in millimeters.
    pub length_mm: f64,
    /// Differential swing in millivolts.
    pub swing_mv: f64,
    /// Channel π-segment count.
    pub segments: usize,
    /// Comparator mismatch σ in millivolts.
    pub sigma_mv: f64,
    /// Data rate in Gbps.
    pub rate_gbps: f64,
    /// Lane count.
    pub lanes: usize,
    /// Neighbor coupling factor.
    pub coupling: f64,
}

impl FarmCell {
    /// Number of switching aggressors a victim lane sees: its immediate
    /// neighbors (two for an interior lane of a ≥3-lane bus).
    pub fn aggressors(&self) -> usize {
        (self.lanes - 1).min(2)
    }

    /// The full [`LinkConfig`] this cell describes: the paper's design
    /// point with the cell's swing and data rate, over a matched-
    /// terminated wire scaled by [`R_PER_MM`]/[`C_PER_MM`].
    pub fn link_config(&self) -> LinkConfig {
        let mut params = DesignParams::paper();
        params.swing = Volt::from_mv(self.swing_mv);
        params.data_rate = Hertz::from_ghz(self.rate_gbps);
        let r_total = Ohm(R_PER_MM * self.length_mm);
        let c_total = Farad(C_PER_MM * self.length_mm);
        let paper = LinkConfig::paper();
        LinkConfig {
            params,
            channel: ChannelConfig {
                r_total,
                c_total,
                segments: self.segments,
                r_term: r_total,
            },
            ffe_boost: paper.ffe_boost,
            oversample: CELL_OVERSAMPLE,
            eye_center_ui: paper.eye_center_ui,
            eye_half_width_ui: paper.eye_half_width_ui,
            jitter_rms_ui: paper.jitter_rms_ui,
        }
    }

    /// Simulates the victim lane with its aggressors switching through
    /// `coupling` of the line capacitance and returns the best eye
    /// opening. `coupling = 0.0` (or a single lane) is the uncoupled
    /// baseline. The aggressor's near wire couples the full capacitance
    /// into the facing victim arm and [`FAR_ARM_COUPLING`] of it into
    /// the far arm; the asymmetry is the differential disturbance.
    fn eye_opening(&self, cfg: &LinkConfig, coupling: f64, rng_seed: u64) -> Volt {
        let vcm = cfg.vcm();
        let mut bit_rng = Rng::seed_from_stream(rng_seed, 0);
        let bits: Vec<bool> = (0..BITS_PER_CELL).map(|_| bit_rng.next_bool()).collect();
        let mut agg_rng = Rng::seed_from_stream(rng_seed, 1);
        let abits: Vec<bool> = (0..BITS_PER_CELL).map(|_| agg_rng.next_bool()).collect();

        let mut tx_v = Transmitter::new(vcm, cfg.params.swing, cfg.ffe_boost);
        let mut tx_a = Transmitter::new(vcm, cfg.params.swing, cfg.ffe_boost);
        let mk_line = || {
            let mut line = RcLine::new(
                cfg.channel.r_total,
                cfg.channel.c_total,
                cfg.channel.segments,
                cfg.channel.r_term,
            );
            line.set_termination_bias(vcm);
            line
        };
        let mut line_p = mk_line();
        let mut line_m = mk_line();

        let cc = coupling * cfg.channel.c_total.value() * self.aggressors() as f64;
        let cc_near = Farad(cc);
        let cc_far = Farad(cc * FAR_ARM_COUPLING);

        let os = cfg.oversample;
        let dt = cfg.params.ui() / os as f64;
        let mut wave = Waveform::new(dt);
        let mut va_prev = vcm;
        for (&bit, &abit) in bits.iter().zip(&abits) {
            let (vp, vm) = tx_v.drive_differential(bit);
            let (va, _) = tx_a.drive_differential(abit);
            for _ in 0..os {
                let op = line_p.step_with_aggressor(vp, dt, va, va_prev, cc_near);
                let om = line_m.step_with_aggressor(vm, dt, va, va_prev, cc_far);
                wave.push(op - om);
                va_prev = va;
            }
        }
        EyeDiagram::from_waveform(&wave, &bits, os, 4).best().1
    }

    /// Evaluates the cell: simulates the coupled and uncoupled eyes,
    /// derives the first-order BER/timing-margin records, and runs the
    /// mismatch Monte-Carlo detection census. Pure in `(self, seed)` —
    /// the executor may run it on any thread, in any order.
    ///
    /// Detection model per mismatch instance with offset magnitude `o`:
    ///
    /// * **at-speed pass** — half the (coupled) eye opening clears `o`;
    /// * **DC pass** — the settled differential (swing through the
    ///   termination divider) clears the programmed comparator offset
    ///   plus `o`, aggressors quiet (a static test never activates
    ///   crosstalk).
    ///
    /// An instance failing at speed but passing DC is a fault only the
    /// at-speed victim/aggressor scenario activates — the paper's flow
    /// would ship it.
    pub fn evaluate(&self, seed: u64) -> CellRecord {
        let _span = rt::obs::span(format!("farm.cell.{}", self.index));
        let cfg = self.link_config();
        let eye_coupled = self.eye_opening(&cfg, self.coupling, seed);
        let eye_uncoupled = if self.coupling == 0.0 || self.aggressors() == 0 {
            eye_coupled
        } else {
            self.eye_opening(&cfg, 0.0, seed)
        };

        // First-order amplitude-to-timing mapping: the phase-domain eye
        // half-width shrinks with the vertical closure ratio.
        let ratio = if eye_uncoupled.value() > 0.0 {
            (eye_coupled.value() / eye_uncoupled.value()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let half_width = (cfg.eye_half_width_ui * ratio).max(1e-4);
        let model = BerModel::new(cfg.eye_center_ui, half_width, cfg.jitter_rms_ui);
        let ber = model.ber_at(cfg.eye_center_ui);
        let margin_ui = model.timing_margin(MARGIN_TARGET_BER);

        // DC levels: full swing through the line/termination divider,
        // matched here, so half the driven differential swing.
        let dc_mv = self.swing_mv * 0.5;
        let cmp_offset_mv = cfg.params.cmp_offset.mv();

        let mut mc = Rng::seed_from_stream(seed, 2);
        let mut failing = 0u32;
        let mut failing_uncoupled = 0u32;
        let mut dc_detected = 0u32;
        for _ in 0..MISMATCH_INSTANCES {
            let offset_mv = (self.sigma_mv * mc.gaussian()).abs();
            let at_speed_fail = eye_coupled.mv() * 0.5 <= offset_mv;
            let at_speed_fail_unc = eye_uncoupled.mv() * 0.5 <= offset_mv;
            let dc_fail = dc_mv <= cmp_offset_mv + offset_mv;
            if at_speed_fail {
                failing += 1;
                if dc_fail {
                    dc_detected += 1;
                }
            }
            if at_speed_fail_unc {
                failing_uncoupled += 1;
            }
        }
        rt::obs::count("farm.cells", 1);
        rt::obs::count("farm.instances", MISMATCH_INSTANCES as u64);
        CellRecord {
            index: self.index as u32,
            eye_uncoupled_mv: eye_uncoupled.mv(),
            eye_coupled_mv: eye_coupled.mv(),
            ber,
            margin_ui,
            instances: MISMATCH_INSTANCES as u32,
            failing,
            failing_uncoupled,
            dc_detected,
        }
    }
}

/// The per-cell result record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRecord {
    /// Row-major cell index.
    pub index: u32,
    /// Best eye opening with aggressors quiet, in mV.
    pub eye_uncoupled_mv: f64,
    /// Best eye opening with aggressors switching, in mV.
    pub eye_coupled_mv: f64,
    /// First-order BER at the nominal sampling phase, coupled.
    pub ber: f64,
    /// Timing margin (UI) at the 1e-9 BER target, coupled.
    pub margin_ui: f64,
    /// Mismatch Monte-Carlo instances scored.
    pub instances: u32,
    /// Instances failing the at-speed test with aggressors switching.
    pub failing: u32,
    /// Instances failing the at-speed test with aggressors quiet.
    pub failing_uncoupled: u32,
    /// Failing instances the static DC test already catches.
    pub dc_detected: u32,
}

impl CellRecord {
    /// Failing instances only the at-speed victim/aggressor scenario
    /// detects (the DC tier misses them).
    pub fn at_speed_only(&self) -> u32 {
        self.failing - self.dc_detected
    }

    /// Instances whose failure exists *only* because the neighbors
    /// switch — the crosstalk-activated faults.
    pub fn xtalk_activated(&self) -> u32 {
        self.failing - self.failing_uncoupled
    }

    /// Encodes the record as [`RECORD_BYTES`] fixed-width bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.eye_uncoupled_mv.to_le_bytes());
        out.extend_from_slice(&self.eye_coupled_mv.to_le_bytes());
        out.extend_from_slice(&self.ber.to_le_bytes());
        out.extend_from_slice(&self.margin_ui.to_le_bytes());
        out.extend_from_slice(&self.instances.to_le_bytes());
        out.extend_from_slice(&self.failing.to_le_bytes());
        out.extend_from_slice(&self.failing_uncoupled.to_le_bytes());
        out.extend_from_slice(&self.dc_detected.to_le_bytes());
    }

    /// Decodes one record from exactly [`RECORD_BYTES`] bytes, or
    /// `None` when the slice has the wrong length.
    pub fn decode(bytes: &[u8]) -> Option<CellRecord> {
        if bytes.len() != RECORD_BYTES {
            return None;
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().ok().unwrap());
        let f64_at = |at: usize| f64::from_le_bytes(bytes[at..at + 8].try_into().ok().unwrap());
        Some(CellRecord {
            index: u32_at(0),
            eye_uncoupled_mv: f64_at(4),
            eye_coupled_mv: f64_at(12),
            ber: f64_at(20),
            margin_ui: f64_at(28),
            instances: u32_at(36),
            failing: u32_at(40),
            failing_uncoupled: u32_at(44),
            dc_detected: u32_at(48),
        })
    }
}

/// The whole sweep as one sharded, checkpointable [`rt::exec`] job.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFarm {
    grid: FarmGrid,
}

impl LinkFarm {
    /// Wraps a validated grid.
    pub fn new(grid: FarmGrid) -> LinkFarm {
        LinkFarm { grid }
    }

    /// The grid.
    pub fn grid(&self) -> &FarmGrid {
        &self.grid
    }

    /// The deterministic shard plan: cells cut into
    /// [`FARM_SHARD_SIZE`]-cell shards, seeded by the grid fingerprint.
    /// A function of the grid only — never of the thread count.
    pub fn plan(&self) -> Vec<Shard> {
        exec::plan(self.grid.total(), FARM_SHARD_SIZE, self.grid.fingerprint())
    }

    /// The sweep's content address (the grid fingerprint) — keys the
    /// checkpoint file and the serve result cache.
    pub fn fingerprint(&self) -> u64 {
        self.grid.fingerprint()
    }

    /// Runs one shard: evaluates each cell under its own decorrelated
    /// RNG substream (keyed by the grid seed and the cell index, so a
    /// resumed or re-sharded run scores identical instances).
    pub fn run_shard(&self, shard: &Shard) -> Vec<CellRecord> {
        let _span = rt::obs::span(format!("shard.link_farm.{}", shard.index));
        shard
            .range()
            .map(|i| {
                let seed = Rng::seed_from_stream(self.grid.seed(), i as u64).next_u64();
                self.grid.cell(i).evaluate(seed)
            })
            .collect()
    }

    /// Runs the whole sweep through [`rt::exec::run_shards`]: panic
    /// isolation, bounded retry, optional checkpoint resume. Records
    /// come back in cell order, byte-identical at any thread count.
    pub fn run(
        &self,
        threads: usize,
        retry: &RetryPolicy,
        checkpoint: Option<&mut Checkpoint>,
    ) -> ExecReport<CellRecord> {
        let plan = self.plan();
        exec::run_shards(threads, retry, checkpoint, &plan, self)
    }
}

impl ShardJob for LinkFarm {
    type Record = CellRecord;

    fn run(&self, shard: &Shard) -> Vec<CellRecord> {
        self.run_shard(shard)
    }

    fn encode(&self, _shard: &Shard, records: &[CellRecord], out: &mut Vec<u8>) {
        for r in records {
            r.encode(out);
        }
    }

    fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<CellRecord>> {
        if payload.len() != shard.len * RECORD_BYTES {
            return None;
        }
        let records: Vec<CellRecord> = payload
            .chunks_exact(RECORD_BYTES)
            .filter_map(CellRecord::decode)
            .collect();
        // Indices must match the shard's cell range, or the payload
        // belongs to some other plan.
        if records.len() != shard.len
            || !records
                .iter()
                .zip(shard.range())
                .all(|(r, i)| r.index as usize == i)
        {
            return None;
        }
        Some(records)
    }
}

fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders the full per-cell grid as CSV (one row per cell, fixed
/// decimal formatting — deterministic bytes on any machine).
pub fn grid_csv(grid: &FarmGrid, records: &[CellRecord]) -> String {
    let mut out = String::from(
        "cell,length_mm,swing_mv,segments,sigma_mv,rate_gbps,lanes,coupling,\
         eye_uncoupled_mv,eye_coupled_mv,ber,margin_ui,instances,failing,\
         failing_uncoupled,dc_detected\n",
    );
    for r in records {
        let c = grid.cell(r.index as usize);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{:.3e},{:.4},{},{},{},{}\n",
            r.index,
            fmt_f(c.length_mm),
            fmt_f(c.swing_mv),
            c.segments,
            fmt_f(c.sigma_mv),
            fmt_f(c.rate_gbps),
            c.lanes,
            fmt_f(c.coupling),
            fmt_f(r.eye_uncoupled_mv),
            fmt_f(r.eye_coupled_mv),
            r.ber,
            r.margin_ui,
            r.instances,
            r.failing,
            r.failing_uncoupled,
            r.dc_detected,
        ));
    }
    out
}

/// Aggregates the eye/margin surface over wire length × coupling: the
/// worst (minimum) coupled eye and timing margin across every other
/// axis. One row per `(length, coupling)` pair, in grid order.
pub fn eye_surface_csv(grid: &FarmGrid, records: &[CellRecord]) -> String {
    let a = grid.axes();
    let mut out = String::from(
        "length_mm,coupling,min_eye_coupled_mv,min_eye_uncoupled_mv,min_margin_ui,max_ber\n",
    );
    for &length in &a.lengths_mm {
        for &coupling in &a.couplings {
            let mut min_c = f64::INFINITY;
            let mut min_u = f64::INFINITY;
            let mut min_m = f64::INFINITY;
            let mut max_b = 0.0f64;
            for r in records {
                let c = grid.cell(r.index as usize);
                if c.length_mm == length && c.coupling == coupling {
                    min_c = min_c.min(r.eye_coupled_mv);
                    min_u = min_u.min(r.eye_uncoupled_mv);
                    min_m = min_m.min(r.margin_ui);
                    max_b = max_b.max(r.ber);
                }
            }
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.3e}\n",
                fmt_f(length),
                fmt_f(coupling),
                fmt_f(min_c),
                fmt_f(min_u),
                min_m,
                max_b,
            ));
        }
    }
    out
}

/// Aggregates the detection surface over mismatch σ × coupling: summed
/// Monte-Carlo instances, at-speed failures, DC catches and
/// crosstalk-activated faults. One row per `(sigma, coupling)` pair.
pub fn detect_surface_csv(grid: &FarmGrid, records: &[CellRecord]) -> String {
    let a = grid.axes();
    let mut out = String::from(
        "sigma_mv,coupling,instances,failing,dc_detected,at_speed_only,xtalk_activated\n",
    );
    for &sigma in &a.sigmas_mv {
        for &coupling in &a.couplings {
            let mut instances = 0u64;
            let mut failing = 0u64;
            let mut dc = 0u64;
            let mut at_speed = 0u64;
            let mut activated = 0u64;
            for r in records {
                let c = grid.cell(r.index as usize);
                if c.sigma_mv == sigma && c.coupling == coupling {
                    instances += u64::from(r.instances);
                    failing += u64::from(r.failing);
                    dc += u64::from(r.dc_detected);
                    at_speed += u64::from(r.at_speed_only());
                    activated += u64::from(r.xtalk_activated());
                }
            }
            out.push_str(&format!(
                "{},{},{instances},{failing},{dc},{at_speed},{activated}\n",
                fmt_f(sigma),
                fmt_f(coupling),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_axes() -> FarmAxes {
        FarmAxes {
            lengths_mm: vec![5.0, 10.0],
            swings_mv: vec![60.0],
            segments: vec![4],
            sigmas_mv: vec![0.0, 8.0],
            rates_gbps: vec![2.5],
            lanes: vec![1, 4],
            couplings: vec![0.0, 0.3],
        }
    }

    #[test]
    fn one_point_grid_is_degenerate_but_valid() {
        let grid = FarmGrid::new(FarmAxes::paper_point(), 1).unwrap();
        assert_eq!(grid.total(), 1);
        let cell = grid.cell(0);
        assert_eq!(cell.index, 0);
        assert_eq!(cell.lanes, 2);
        cell.link_config().validate().unwrap();
        let farm = LinkFarm::new(grid);
        assert_eq!(farm.plan().len(), 1);
        let report = farm.run(1, &RetryPolicy::none(), None);
        assert!(report.is_complete());
        assert_eq!(report.records.len(), 1);
    }

    #[test]
    fn empty_axis_is_rejected() {
        for (name, mutate) in [
            ("lengths_mm", 0usize),
            ("swings_mv", 1),
            ("segments", 2),
            ("sigmas_mv", 3),
            ("rates_gbps", 4),
            ("lanes", 5),
            ("couplings", 6),
        ] {
            let mut axes = FarmAxes::paper_point();
            match mutate {
                0 => axes.lengths_mm.clear(),
                1 => axes.swings_mv.clear(),
                2 => axes.segments.clear(),
                3 => axes.sigmas_mv.clear(),
                4 => axes.rates_gbps.clear(),
                5 => axes.lanes.clear(),
                _ => axes.couplings.clear(),
            }
            assert_eq!(
                FarmGrid::new(axes, 0).unwrap_err(),
                FarmError::EmptyAxis(name)
            );
        }
    }

    #[test]
    fn out_of_range_and_non_finite_rejected() {
        let mut axes = FarmAxes::paper_point();
        axes.couplings = vec![f64::NAN];
        assert_eq!(
            axes.validate().unwrap_err(),
            FarmError::NonFinite("couplings")
        );
        let mut axes = FarmAxes::paper_point();
        axes.lanes = vec![0];
        assert_eq!(axes.validate().unwrap_err(), FarmError::OutOfRange("lanes"));
        let mut axes = FarmAxes::paper_point();
        axes.lengths_mm = vec![-3.0];
        assert_eq!(
            axes.validate().unwrap_err(),
            FarmError::OutOfRange("lengths_mm")
        );
    }

    #[test]
    fn cell_enumeration_is_row_major_and_deterministic() {
        let grid = FarmGrid::new(tiny_axes(), 3).unwrap();
        assert_eq!(grid.total(), 2 * 2 * 2 * 2);
        // Innermost axis (couplings) varies fastest.
        assert_eq!(grid.cell(0).coupling, 0.0);
        assert_eq!(grid.cell(1).coupling, 0.3);
        assert_eq!(grid.cell(0).lanes, 1);
        assert_eq!(grid.cell(2).lanes, 4);
        // Outermost axis (lengths) varies slowest.
        assert_eq!(grid.cell(0).length_mm, 5.0);
        assert_eq!(grid.cell(grid.total() - 1).length_mm, 10.0);
        // Exhaustive match against the nested-loop reference order.
        let a = tiny_axes();
        let mut expect = Vec::new();
        for &l in &a.lengths_mm {
            for &sig in &a.sigmas_mv {
                for &lanes in &a.lanes {
                    for &k in &a.couplings {
                        expect.push((l, sig, lanes, k));
                    }
                }
            }
        }
        for (i, e) in expect.iter().enumerate() {
            let c = grid.cell(i);
            assert_eq!((c.length_mm, c.sigma_mv, c.lanes, c.coupling), *e, "{i}");
        }
    }

    #[test]
    fn fingerprint_tracks_grid_identity() {
        let a = FarmGrid::new(tiny_axes(), 3).unwrap();
        let b = FarmGrid::new(tiny_axes(), 3).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same grid, same address");
        let c = FarmGrid::new(tiny_axes(), 4).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed is identity");
        let mut axes = tiny_axes();
        axes.couplings = vec![0.3, 0.0]; // reordered: different grid order
        let d = FarmGrid::new(axes, 3).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint(), "axis order is identity");
        // Moving a value across adjacent axes must not collide: the flat
        // value sequence is 5, 10, 60 in both, only the length prefixes
        // tell them apart.
        let mut axes = tiny_axes();
        axes.lengths_mm = vec![5.0, 10.0];
        axes.swings_mv = vec![60.0];
        let e = FarmGrid::new(axes, 3).unwrap();
        let mut axes = tiny_axes();
        axes.lengths_mm = vec![5.0];
        axes.swings_mv = vec![10.0, 60.0];
        let f = FarmGrid::new(axes, 3).unwrap();
        assert_ne!(e.fingerprint(), f.fingerprint());
    }

    #[test]
    fn record_codec_roundtrips() {
        let r = CellRecord {
            index: 41,
            eye_uncoupled_mv: 21.5,
            eye_coupled_mv: 13.25,
            ber: 3.5e-9,
            margin_ui: 0.123,
            instances: 8,
            failing: 3,
            failing_uncoupled: 1,
            dc_detected: 1,
        };
        let mut bytes = Vec::new();
        r.encode(&mut bytes);
        assert_eq!(bytes.len(), RECORD_BYTES);
        assert_eq!(CellRecord::decode(&bytes), Some(r));
        assert_eq!(CellRecord::decode(&bytes[1..]), None);
        assert_eq!(r.at_speed_only(), 2);
        assert_eq!(r.xtalk_activated(), 2);
    }

    #[test]
    fn shard_decode_rejects_foreign_payloads() {
        let farm = LinkFarm::new(FarmGrid::new(tiny_axes(), 3).unwrap());
        let plan = farm.plan();
        assert_eq!(plan.len(), 1, "16 cells fit one shard");
        let records = farm.run_shard(&plan[0]);
        let mut payload = Vec::new();
        ShardJob::encode(&farm, &plan[0], &records, &mut payload);
        assert!(ShardJob::decode(&farm, &plan[0], &payload).is_some());
        // Wrong length or shifted indices are recomputed, not trusted.
        assert!(ShardJob::decode(&farm, &plan[0], &payload[RECORD_BYTES..]).is_none());
        let mut shifted = payload.clone();
        shifted[0] ^= 1; // first record's index
        assert!(ShardJob::decode(&farm, &plan[0], &shifted).is_none());
    }

    #[test]
    fn single_lane_is_immune_to_the_coupling_axis() {
        let mut axes = FarmAxes::paper_point();
        axes.lanes = vec![1];
        axes.couplings = vec![0.0, 0.5];
        let grid = FarmGrid::new(axes, 9).unwrap();
        // Same seed, different coupling: a lone lane has no aggressors,
        // so the eye is bit-identical across the coupling axis.
        let a = grid.cell(0).evaluate(0x5EED);
        let b = grid.cell(1).evaluate(0x5EED);
        assert_eq!(a.eye_coupled_mv, b.eye_coupled_mv, "no neighbors, no hit");
        assert_eq!(a.eye_coupled_mv, a.eye_uncoupled_mv);
        assert_eq!(b.eye_coupled_mv, b.eye_uncoupled_mv);
    }
}
