//! Clock-domain crossing at the receiver.
//!
//! Once locked, the sampling clock has an arbitrary phase relative to the
//! receiver's core clock `φRx`. The paper: *"the phase difference between
//! the sampling clock and the receiver clock can be found from the coarse
//! tuning control word to an accuracy within the VCDL phase tuning range.
//! If the sampling clock is less than half cycle from the receiver's
//! clock, the data is delayed by half a clock cycle to ensure reliable
//! crossover"* — i.e. the retimer flip-flop is clocked by `φ̄Rx` instead
//! of `φRx`, and for test this selection is controllable through scan
//! chain B (adding one flip-flop to chain A when `φ̄Rx` is chosen).
//!
//! [`CrossingPlan`] reproduces that decision and quantifies the resulting
//! setup margin at the retimer.
//!
//! # Examples
//!
//! ```
//! use link::crossing::{CrossingPlan, RetimerClock};
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! // Sampling in the half-cycle before the receiver capture edge: use
//! // the half-cycle retimer.
//! let plan = CrossingPlan::from_coarse_word(&p, 5);
//! assert_eq!(plan.retimer, RetimerClock::PhiRxBar);
//! // Sampling just after the edge: the direct retimer has a full cycle.
//! let plan = CrossingPlan::from_coarse_word(&p, 0);
//! assert_eq!(plan.retimer, RetimerClock::PhiRx);
//! ```

use msim::params::DesignParams;

/// Which clock edge retimes the recovered data into the receiver domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetimerClock {
    /// The receiver clock directly (full-cycle transfer).
    PhiRx,
    /// The inverted receiver clock (half-cycle transfer; lengthens scan
    /// chain A by one flip-flop per the paper).
    PhiRxBar,
}

/// The domain-crossing decision and its margin.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossingPlan {
    /// Selected retimer clock.
    pub retimer: RetimerClock,
    /// Phase of the sampling clock relative to `φRx`, in UI, as known
    /// from the coarse control word (± the VCDL range).
    pub sampling_phase_ui: f64,
    /// Worst-case setup margin at the retimer, in UI, accounting for the
    /// VCDL-range uncertainty of the phase knowledge.
    pub setup_margin_ui: f64,
}

impl CrossingPlan {
    /// Derives the crossing plan from the coarse tuning control word (the
    /// one-hot ring-counter position), exactly as the paper describes:
    /// the DLL phase index tells the receiver where the sampling clock is
    /// to within the VCDL tuning range.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_word` is not a valid phase index.
    pub fn from_coarse_word(p: &DesignParams, coarse_word: usize) -> CrossingPlan {
        assert!(coarse_word < p.dll_phases, "coarse word out of range");
        let phase = coarse_word as f64 / p.dll_phases as f64;
        // Worst-case position inside the VCDL range.
        let uncertainty = p.vcdl_range_ui;

        // Worst-case setup margin to the φRx capture edge (at 0/1.0) and
        // to the φ̄Rx edge (at 0.5).
        let margin_full = forward_margin(phase, uncertainty, 1.0);
        let margin_half = forward_margin(phase, uncertainty, 0.5);

        // The paper's rule: when the sampling clock lands within half a
        // cycle of the receiver's capture edge, delay the data by half a
        // clock (retime on φ̄Rx). Equivalently: capture on whichever edge
        // leaves the larger worst-case setup margin.
        let (retimer, setup_margin_ui) = if margin_half > margin_full {
            (RetimerClock::PhiRxBar, margin_half)
        } else {
            (RetimerClock::PhiRx, margin_full)
        };
        CrossingPlan {
            retimer,
            sampling_phase_ui: phase,
            setup_margin_ui,
        }
    }

    /// Whether this plan lengthens scan chain A by one flip-flop (the
    /// paper: choosing `φ̄Rx` adds the extra stage).
    pub fn extends_scan_chain_a(&self) -> bool {
        self.retimer == RetimerClock::PhiRxBar
    }
}

/// Worst-case forward setup distance (in UI) from a sampling instant
/// known only to lie in `[phase, phase + uncertainty]` (mod 1) to the
/// capture edge at `edge`. Zero when the uncertainty band straddles the
/// edge itself — the unreliable case the half-cycle rule avoids.
fn forward_margin(phase: f64, uncertainty: f64, edge: f64) -> f64 {
    let start = phase.rem_euclid(1.0);
    let end = start + uncertainty;
    let e = edge.rem_euclid(1.0);
    // An edge coinciding with the band start is the previous capture; the
    // next occurrence is a full cycle later.
    let unwrapped_edge = if e <= start { e + 1.0 } else { e };
    if unwrapped_edge <= end {
        0.0
    } else {
        unwrapped_edge - end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DesignParams {
        DesignParams::paper()
    }

    #[test]
    fn near_edge_phases_take_the_half_cycle_path() {
        // Phases in the half-cycle before the φRx capture edge leave less
        // than 0.5 UI of setup: φ̄Rx is selected.
        for word in [5usize, 6, 7, 8, 9] {
            let plan = CrossingPlan::from_coarse_word(&p(), word);
            assert_eq!(
                plan.retimer,
                RetimerClock::PhiRxBar,
                "word {word} should use the half-cycle transfer"
            );
            assert!(plan.extends_scan_chain_a());
        }
    }

    #[test]
    fn far_phases_take_the_direct_path() {
        for word in [0usize, 1, 2, 3, 4] {
            let plan = CrossingPlan::from_coarse_word(&p(), word);
            assert_eq!(
                plan.retimer,
                RetimerClock::PhiRx,
                "word {word} should transfer directly"
            );
            assert!(!plan.extends_scan_chain_a());
        }
    }

    #[test]
    fn every_word_has_safe_margin() {
        // The whole point of the rule: whichever clock is selected, the
        // retimer always has comfortable setup margin.
        for word in 0..p().dll_phases {
            let plan = CrossingPlan::from_coarse_word(&p(), word);
            assert!(
                plan.setup_margin_ui > 0.4,
                "word {word}: only {:.3} UI margin with {:?}",
                plan.setup_margin_ui,
                plan.retimer
            );
        }
    }

    #[test]
    fn rule_beats_always_direct() {
        // Without the rule (always φRx) the worst-case margin collapses to
        // zero: the uncertainty band of the last phase straddles the edge.
        let worst_direct = (0..p().dll_phases)
            .map(|w| forward_margin(w as f64 / 10.0, p().vcdl_range_ui, 1.0))
            .fold(f64::INFINITY, f64::min);
        let worst_ruled = (0..p().dll_phases)
            .map(|w| CrossingPlan::from_coarse_word(&p(), w).setup_margin_ui)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(worst_direct, 0.0, "direct worst case must be unsafe");
        assert!(worst_ruled > 0.4, "ruled worst case {worst_ruled}");
    }

    #[test]
    fn forward_margin_band_semantics() {
        // Band clear of the edge: margin from the band's late end.
        assert!((forward_margin(0.2, 0.1, 1.0) - 0.7).abs() < 1e-12);
        // Band straddling the edge: zero margin.
        assert_eq!(forward_margin(0.95, 0.1, 1.0), 0.0);
        // Edge behind the band start wraps forward.
        assert!((forward_margin(0.7, 0.1, 0.5) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn margin_accounts_for_vcdl_uncertainty() {
        let mut loose = p();
        loose.vcdl_range_ui = 0.3; // much larger phase uncertainty
        let tight_plan = CrossingPlan::from_coarse_word(&p(), 3);
        let loose_plan = CrossingPlan::from_coarse_word(&loose, 3);
        assert!(loose_plan.setup_margin_ui < tight_plan.setup_margin_ui);
    }

    #[test]
    #[should_panic(expected = "coarse word out of range")]
    fn bad_word_panics() {
        let _ = CrossingPlan::from_coarse_word(&p(), 10);
    }
}
