//! The distributed-RC on-chip interconnect.
//!
//! Repeaterless links are RC-dominated: a long minimum-width wire behaves
//! as a distributed RC line whose low-pass response closes the data eye —
//! the problem the paper's capacitive feed-forward equalizer exists to
//! solve. The model is a ladder of `n` lumped π-segments terminated into
//! the receiver resistance, integrated with **backward Euler** (solving the
//! tridiagonal system per step with the Thomas algorithm), so the step
//! size is not stability-limited by the smallest segment time constant.
//!
//! One [`RcLine`] models one arm; the differential interconnect in
//! [`crate::LowSwingLink`] instantiates two.
//!
//! # Examples
//!
//! ```
//! use link::channel::RcLine;
//! use msim::units::{Farad, Hertz, Ohm, Sec, Volt};
//!
//! // A 2 kΩ / 1 pF line: the output settles toward a step input.
//! let mut line = RcLine::new(Ohm::from_kohm(2.0), Farad::from_pf(1.0), 10,
//!                            Ohm::from_kohm(2.0));
//! let dt = Sec::from_ps(25.0);
//! let mut out = Volt::ZERO;
//! for _ in 0..2000 {
//!     out = line.step(Volt(1.0), dt);
//! }
//! assert!(out.value() > 0.45, "step response must settle toward the divider level");
//! ```

use msim::units::{Farad, Hertz, Ohm, Sec, Volt};

/// One arm of the distributed-RC interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct RcLine {
    /// Series resistance per segment (ohms).
    r_seg: f64,
    /// Shunt capacitance per segment (farads).
    c_seg: f64,
    /// Termination resistance to the termination bias (ohms);
    /// `f64::INFINITY` for an open (unterminated) line.
    r_term: f64,
    /// Termination bias voltage the line is returned to.
    v_term: Volt,
    /// Node voltages along the line.
    nodes: Vec<f64>,
}

impl RcLine {
    /// Creates a line with total series resistance `r_total` and total
    /// shunt capacitance `c_total` split across `segments` π-segments,
    /// terminated into `r_term` (referenced to 0 V until
    /// [`RcLine::set_termination_bias`] is called).
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or any electrical value is not strictly
    /// positive (`r_term` may be `f64::INFINITY` via
    /// [`RcLine::unterminated`]).
    pub fn new(r_total: Ohm, c_total: Farad, segments: usize, r_term: Ohm) -> RcLine {
        assert!(segments > 0, "line needs at least one segment");
        assert!(
            r_total.value() > 0.0 && c_total.value() > 0.0 && r_term.value() > 0.0,
            "line parameters must be positive"
        );
        RcLine {
            r_seg: r_total.value() / segments as f64,
            c_seg: c_total.value() / segments as f64,
            r_term: r_term.value(),
            v_term: Volt::ZERO,
            nodes: vec![0.0; segments],
        }
    }

    /// Creates an unterminated (capacitively loaded) line.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RcLine::new`].
    pub fn unterminated(r_total: Ohm, c_total: Farad, segments: usize) -> RcLine {
        let mut line = RcLine::new(r_total, c_total, segments, Ohm(1.0));
        line.r_term = f64::INFINITY;
        line
    }

    /// Sets the termination bias (the receiver's Vcm) and presets the line
    /// to it.
    pub fn set_termination_bias(&mut self, v: Volt) {
        self.v_term = v;
        self.preset(v);
    }

    /// Presets every node to `v` (steady state of a DC input `v = v_term`).
    pub fn preset(&mut self, v: Volt) {
        self.nodes.fill(v.value());
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.nodes.len()
    }

    /// Far-end (receiver-side) voltage.
    pub fn output(&self) -> Volt {
        Volt(*self.nodes.last().expect("line has at least one segment"))
    }

    /// Advances the line by `dt` with the near end driven to `vin`.
    /// Returns the far-end voltage.
    ///
    /// Backward Euler: solves `(C/dt + G) v⁺ = C/dt v + b` where `G` is the
    /// tridiagonal conductance matrix of the ladder.
    pub fn step(&mut self, vin: Volt, dt: Sec) -> Volt {
        let n = self.nodes.len();
        let g = 1.0 / self.r_seg;
        let g_term = if self.r_term.is_finite() {
            1.0 / self.r_term
        } else {
            0.0
        };
        let cdt = self.c_seg / dt.value();

        // Tridiagonal coefficients: a = sub, b = diag, c = super, d = rhs.
        let mut sub = vec![0.0; n];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            let g_left = g; // toward the driver (node 0 connects to vin)
            let g_right = if i + 1 < n { g } else { g_term };
            diag[i] = cdt + g_left + g_right;
            rhs[i] = cdt * self.nodes[i];
            if i == 0 {
                rhs[i] += g * vin.value();
            } else {
                sub[i] = -g;
            }
            if i + 1 < n {
                sup[i] = -g;
            } else {
                rhs[i] += g_term * self.v_term.value();
            }
        }

        // Thomas algorithm.
        for i in 1..n {
            let w = sub[i] / diag[i - 1];
            diag[i] -= w * sup[i - 1];
            rhs[i] -= w * rhs[i - 1];
        }
        self.nodes[n - 1] = rhs[n - 1] / diag[n - 1];
        for i in (0..n - 1).rev() {
            self.nodes[i] = (rhs[i] - sup[i] * self.nodes[i + 1]) / diag[i];
        }
        self.output()
    }

    /// DC transfer gain from the driver to the far end: the resistive
    /// divider formed by the line and the termination (1.0 when
    /// unterminated).
    pub fn dc_gain(&self) -> f64 {
        if self.r_term.is_finite() {
            let r_line = self.r_seg * self.nodes.len() as f64;
            self.r_term / (self.r_term + r_line)
        } else {
            1.0
        }
    }

    /// Advances the line by `dt` with an *aggressor* wire capacitively
    /// coupled to every node: `c_couple` is the total coupling capacitance
    /// along the line and `(va_now, va_prev)` the aggressor's voltage at
    /// the end and start of the step. Crosstalk injects
    /// `C_c/dt · (va_now − va_prev)` of displacement current per node.
    ///
    /// A victim of the paper's *differential* link sees the aggressor on
    /// both arms (common mode) and rejects it; a single-ended wire takes
    /// the full hit — see the crosstalk tests.
    ///
    /// # Examples
    ///
    /// ```
    /// use link::channel::RcLine;
    /// use msim::units::{Farad, Ohm, Sec, Volt};
    ///
    /// let mut line = RcLine::new(Ohm::from_kohm(2.0), Farad::from_pf(1.0), 10,
    ///                            Ohm::from_kohm(2.0));
    /// line.set_termination_bias(Volt(0.6));
    /// let (dt, cc) = (Sec::from_ps(25.0), Farad::from_ff(100.0));
    /// // A quiet aggressor injects nothing; an edge disturbs the victim.
    /// let quiet = line.step_with_aggressor(Volt(0.6), dt, Volt(1.2), Volt(1.2), cc);
    /// assert!((quiet.value() - 0.6).abs() < 1e-9);
    /// let hit = line.step_with_aggressor(Volt(0.6), dt, Volt(1.2), Volt::ZERO, cc);
    /// assert!((hit.value() - 0.6).abs() * 1e3 > 1.0, "edge couples in: {hit}");
    /// ```
    pub fn step_with_aggressor(
        &mut self,
        vin: Volt,
        dt: Sec,
        va_now: Volt,
        va_prev: Volt,
        c_couple: Farad,
    ) -> Volt {
        let n = self.nodes.len();
        let g = 1.0 / self.r_seg;
        let g_term = if self.r_term.is_finite() {
            1.0 / self.r_term
        } else {
            0.0
        };
        let cdt = self.c_seg / dt.value();
        let cc_seg = c_couple.value() / n as f64;
        let ccdt = cc_seg / dt.value();
        let inject = ccdt * (va_now.value() - va_prev.value());

        let mut sub = vec![0.0; n];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            let g_right = if i + 1 < n { g } else { g_term };
            // The coupling cap also loads the node.
            diag[i] = cdt + ccdt + g + g_right;
            rhs[i] = (cdt + ccdt) * self.nodes[i] + inject;
            if i == 0 {
                rhs[i] += g * vin.value();
            } else {
                sub[i] = -g;
            }
            if i + 1 < n {
                sup[i] = -g;
            } else {
                rhs[i] += g_term * self.v_term.value();
            }
        }
        for i in 1..n {
            let w = sub[i] / diag[i - 1];
            diag[i] -= w * sup[i - 1];
            rhs[i] -= w * rhs[i - 1];
        }
        self.nodes[n - 1] = rhs[n - 1] / diag[n - 1];
        for i in (0..n - 1).rev() {
            self.nodes[i] = (rhs[i] - sup[i] * self.nodes[i + 1]) / diag[i];
        }
        self.output()
    }

    /// Simulated impulse response: the line is pulsed for one `dt` and
    /// sampled for `n` steps (the line state is reset first).
    pub fn impulse_response(&mut self, dt: Sec, n: usize) -> Vec<f64> {
        self.preset(Volt::ZERO);
        let v_term = self.v_term;
        self.v_term = Volt::ZERO;
        let mut h = Vec::with_capacity(n);
        for k in 0..n {
            let vin = if k == 0 { Volt(1.0) } else { Volt::ZERO };
            h.push(self.step(vin, dt).value());
        }
        self.v_term = v_term;
        h
    }

    /// Magnitude of the line's transfer function at frequency `f`,
    /// evaluated by a single-bin discrete Fourier transform of the
    /// simulated impulse response.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or `dt`/`n` cannot resolve it
    /// (`f >= 1/(2 dt)`).
    pub fn magnitude_at(&mut self, f: Hertz, dt: Sec, n: usize) -> f64 {
        assert!(f.value() >= 0.0, "frequency must be non-negative");
        assert!(
            f.value() < 0.5 / dt.value(),
            "frequency beyond the Nyquist limit of the chosen dt"
        );
        let h = self.impulse_response(dt, n);
        let w = std::f64::consts::TAU * f.value() * dt.value();
        let (mut re, mut im) = (0.0, 0.0);
        for (k, hk) in h.iter().enumerate() {
            re += hk * (w * k as f64).cos();
            im -= hk * (w * k as f64).sin();
        }
        (re * re + im * im).sqrt()
    }

    /// The −3 dB bandwidth found by bisection on [`RcLine::magnitude_at`].
    ///
    /// # Examples
    ///
    /// ```
    /// use link::channel::RcLine;
    /// use msim::units::{Farad, Ohm, Sec};
    ///
    /// let mut line = RcLine::new(Ohm::from_kohm(2.0), Farad::from_pf(1.0), 10,
    ///                            Ohm::from_kohm(2.0));
    /// let bw = line.bandwidth_3db(Sec::from_ps(25.0), 512);
    /// // An RC-dominated 2 kΩ/1 pF wire rolls off in the hundreds of MHz.
    /// assert!(bw.value() > 50e6 && bw.value() < 2e9, "got {bw}");
    /// ```
    pub fn bandwidth_3db(&mut self, dt: Sec, n: usize) -> Hertz {
        let dc = self.magnitude_at(Hertz(0.0), dt, n);
        let target = dc / std::f64::consts::SQRT_2;
        let (mut lo, mut hi) = (0.0, 0.45 / dt.value());
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.magnitude_at(Hertz(mid), dt, n) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Hertz(0.5 * (lo + hi))
    }

    /// 0-to-50 % step delay measured by simulation, in seconds.
    pub fn step_delay_50(&mut self, dt: Sec, max_steps: usize) -> Option<Sec> {
        self.preset(Volt::ZERO);
        let v_term = self.v_term;
        self.v_term = Volt::ZERO;
        let target = 0.5 * self.dc_gain();
        let mut result = None;
        for k in 0..max_steps {
            let out = self.step(Volt(1.0), dt);
            if out.value() >= target {
                result = Some(dt * k as f64);
                break;
            }
        }
        self.v_term = v_term;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_line() -> RcLine {
        RcLine::new(
            Ohm::from_kohm(2.0),
            Farad::from_pf(1.0),
            10,
            Ohm::from_kohm(2.0),
        )
    }

    #[test]
    fn settles_to_dc_divider() {
        let mut line = paper_line();
        let dt = Sec::from_ps(25.0);
        let mut out = Volt::ZERO;
        for _ in 0..10_000 {
            out = line.step(Volt(1.0), dt);
        }
        // R_line = R_term: divider of 0.5 toward v_term = 0.
        assert!((out.value() - 0.5).abs() < 1e-3, "settled to {out}");
        assert!((line.dc_gain() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unterminated_line_settles_to_input() {
        let mut line = RcLine::unterminated(Ohm::from_kohm(2.0), Farad::from_pf(1.0), 10);
        let dt = Sec::from_ps(25.0);
        let mut out = Volt::ZERO;
        for _ in 0..20_000 {
            out = line.step(Volt(0.8), dt);
        }
        assert!((out.value() - 0.8).abs() < 1e-3);
        assert_eq!(line.dc_gain(), 1.0);
    }

    #[test]
    fn output_is_low_passed() {
        // A single 400 ps pulse through the RC line must arrive attenuated.
        let mut line = paper_line();
        let dt = Sec::from_ps(25.0);
        let mut peak: f64 = 0.0;
        for k in 0..200 {
            let vin = if k < 16 { Volt(1.0) } else { Volt(0.0) };
            let out = line.step(vin, dt);
            peak = peak.max(out.value());
        }
        assert!(peak < 0.45, "pulse must be attenuated, peaked at {peak}");
        assert!(peak > 0.01, "but some energy must arrive");
    }

    #[test]
    fn stability_with_large_steps() {
        // Backward Euler must not oscillate even with dt far above the
        // per-segment time constant.
        let mut line = RcLine::new(
            Ohm::from_kohm(2.0),
            Farad::from_pf(1.0),
            50,
            Ohm::from_kohm(2.0),
        );
        let dt = Sec::from_ns(1.0); // segment tau = 40Ω*20fF = 0.8 ps << dt
        let mut prev = 0.0;
        for _ in 0..100 {
            let out = line.step(Volt(1.0), dt).value();
            assert!(out >= prev - 1e-12, "monotonic settling violated");
            assert!(out <= 0.5 + 1e-9);
            prev = out;
        }
    }

    #[test]
    fn termination_bias_presets_line() {
        let mut line = paper_line();
        line.set_termination_bias(Volt(0.6));
        assert_eq!(line.output(), Volt(0.6));
        // Driving at the bias keeps it there.
        let out = line.step(Volt(0.6), Sec::from_ps(25.0));
        assert!((out.value() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn step_delay_is_measurable_and_slow() {
        let mut line = paper_line();
        let delay = line
            .step_delay_50(Sec::from_ps(25.0), 100_000)
            .expect("line settles");
        // An RC-dominated 2 kΩ/1 pF line has a multi-hundred-ps 50 % delay:
        // comparable to or beyond the 400 ps UI, which is why the link
        // needs equalization.
        assert!(delay.ps() > 100.0, "delay {delay} too fast");
        assert!(delay.ps() < 2000.0, "delay {delay} too slow");
    }

    #[test]
    fn aggressor_disturbs_a_single_ended_victim() {
        let mut line = paper_line();
        line.set_termination_bias(Volt(0.6));
        let dt = Sec::from_ps(25.0);
        let cc = Farad::from_ff(100.0);
        // Quiet victim, full-swing aggressor edge.
        let mut peak: f64 = 0.0;
        let mut va_prev = Volt::ZERO;
        for k in 0..200 {
            let va = if k >= 20 { Volt(1.2) } else { Volt::ZERO };
            let out = line.step_with_aggressor(Volt(0.6), dt, va, va_prev, cc);
            peak = peak.max((out.value() - 0.6).abs());
            va_prev = va;
        }
        // A 1.2 V aggressor through 100 fF onto a 60 mV-swing line is a
        // signal-sized disturbance.
        assert!(
            peak * 1e3 > 10.0,
            "crosstalk peak only {:.1} mV",
            peak * 1e3
        );
    }

    #[test]
    fn differential_victim_rejects_common_mode_crosstalk() {
        // Both arms see the same aggressor: the differential output is
        // untouched — the reason the paper's interconnect is differential.
        let mk = || {
            let mut l = paper_line();
            l.set_termination_bias(Volt(0.6));
            l
        };
        let mut plus = mk();
        let mut minus = mk();
        let dt = Sec::from_ps(25.0);
        let cc = Farad::from_ff(100.0);
        let mut worst_diff: f64 = 0.0;
        let mut va_prev = Volt::ZERO;
        for k in 0..200 {
            let va = if k >= 20 { Volt(1.2) } else { Volt::ZERO };
            let op = plus.step_with_aggressor(Volt(0.63), dt, va, va_prev, cc);
            let om = minus.step_with_aggressor(Volt(0.57), dt, va, va_prev, cc);
            // After settling, the differential must stay at the driven
            // 30 mV (through the 0.5 divider) despite the aggressor.
            if k > 150 {
                worst_diff = worst_diff.max(((op - om).mv() - 30.0).abs());
            }
            va_prev = va;
        }
        assert!(
            worst_diff < 1.0,
            "differential disturbed by {worst_diff:.2} mV"
        );
    }

    #[test]
    fn aggressor_step_matches_plain_step_when_decoupled_aggressor_is_quiet() {
        let dt = Sec::from_ps(25.0);
        let mut a = paper_line();
        let mut b = paper_line();
        for k in 0..100 {
            let vin = Volt(if k % 16 < 8 { 0.63 } else { 0.57 });
            let va = a.step(vin, dt);
            // Quiet aggressor with nonzero coupling still loads the line,
            // so compare with zero coupling instead.
            let vb = b.step_with_aggressor(vin, dt, Volt(0.6), Volt(0.6), Farad(1e-21));
            assert!((va - vb).abs().mv() < 0.1, "step {k}: {va} vs {vb}");
        }
    }

    #[test]
    fn frequency_response_is_low_pass() {
        let mut line = paper_line();
        let dt = Sec::from_ps(10.0);
        let dc = line.magnitude_at(Hertz(0.0), dt, 4096);
        // DC magnitude equals the resistive divider (sum of impulse
        // response = step response final value).
        assert!((dc - 0.5).abs() < 1e-3, "DC magnitude {dc}");
        // Monotone roll-off across decades.
        let g1 = line.magnitude_at(Hertz::from_mhz(100.0), dt, 4096);
        let g2 = line.magnitude_at(Hertz::from_ghz(1.0), dt, 4096);
        let g3 = line.magnitude_at(Hertz::from_ghz(5.0), dt, 4096);
        assert!(dc > g1 && g1 > g2 && g2 > g3, "{dc} {g1} {g2} {g3}");
    }

    #[test]
    fn bandwidth_is_below_the_bit_rate() {
        // The premise of the whole paper: the RC-dominated line's -3 dB
        // point sits below the 2.5 Gbps Nyquist frequency (1.25 GHz), so
        // the link needs equalization.
        let mut line = paper_line();
        let bw = line.bandwidth_3db(Sec::from_ps(10.0), 4096);
        assert!(
            bw.value() < 1.25e9,
            "bandwidth {:.2} GHz not RC-limited",
            bw.value() / 1e9
        );
        assert!(bw.value() > 5e7, "bandwidth implausibly low");
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn magnitude_beyond_nyquist_panics() {
        let mut line = paper_line();
        let _ = line.magnitude_at(Hertz::from_ghz(100.0), Sec::from_ps(10.0), 64);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = RcLine::new(Ohm(1.0), Farad(1e-12), 0, Ohm(1.0));
    }

    #[test]
    #[should_panic(expected = "parameters must be positive")]
    fn nonpositive_r_panics() {
        let _ = RcLine::new(Ohm(0.0), Farad(1e-12), 4, Ohm(1.0));
    }
}
