//! Link-level configuration.
//!
//! Bundles the paper's design point ([`DesignParams`]) with the channel,
//! equalizer and timing quantities the waveform- and phase-domain
//! simulations need. Defaults follow the paper where it is explicit
//! (2.5 Gbps, 60 mV swing, 10-phase DLL, 100 MHz scan clock) and use
//! RC-dominated 130 nm-class line values where it is not.
//!
//! # Examples
//!
//! ```
//! use link::config::LinkConfig;
//!
//! let cfg = LinkConfig::paper();
//! cfg.validate().unwrap();
//! assert_eq!(cfg.params.dll_phases, 10);
//! assert_eq!(cfg.oversample, 16);
//! ```

use msim::params::{DesignParams, ParamsError};
use msim::units::{Farad, Ohm, Volt};

/// Channel (interconnect) electrical parameters, per arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Total series resistance of the wire.
    pub r_total: Ohm,
    /// Total shunt capacitance of the wire.
    pub c_total: Farad,
    /// Number of lumped π-segments in the model.
    pub segments: usize,
    /// Receiver termination resistance.
    pub r_term: Ohm,
}

impl ChannelConfig {
    /// An RC-dominated long on-chip wire in a 130 nm-class process
    /// (≈ 10 mm of minimum-pitch metal): 2 kΩ, 1 pF, matched termination.
    pub fn long_wire() -> ChannelConfig {
        ChannelConfig {
            r_total: Ohm::from_kohm(2.0),
            c_total: Farad::from_pf(1.0),
            segments: 10,
            r_term: Ohm::from_kohm(2.0),
        }
    }
}

/// Full link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// The mixed-signal design point.
    pub params: DesignParams,
    /// The interconnect.
    pub channel: ChannelConfig,
    /// Feed-forward equalizer boost: the transition tap weight relative to
    /// the main tap (`αCs`-to-`Cs` coupling strength). 0 disables the FFE.
    pub ffe_boost: f64,
    /// Simulation samples per UI.
    pub oversample: usize,
    /// Position of the data-eye center at the receiver, in UI, as the
    /// clock synchronizer must find it (channel group delay modulo 1 UI).
    pub eye_center_ui: f64,
    /// Half-width of the healthy data eye at the sampler, in UI.
    pub eye_half_width_ui: f64,
    /// RMS sampling jitter of the healthy clock path, in UI.
    pub jitter_rms_ui: f64,
}

impl LinkConfig {
    /// The paper's design point with the default long-wire channel.
    pub fn paper() -> LinkConfig {
        LinkConfig {
            params: DesignParams::paper(),
            channel: ChannelConfig::long_wire(),
            ffe_boost: 2.0,
            oversample: 16,
            eye_center_ui: 0.37,
            eye_half_width_ui: 0.30,
            jitter_rms_ui: 0.045,
        }
    }

    /// The receiver common-mode (termination bias) voltage.
    pub fn vcm(&self) -> Volt {
        self.params.vmid
    }

    /// Checks link-level design rules on top of
    /// [`DesignParams::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] for design-point violations; channel and
    /// timing fields are asserted-on directly by the constructors that
    /// consume them.
    pub fn validate(&self) -> Result<(), ParamsError> {
        self.params.validate()?;
        if self.oversample < 2
            || !(0.0..1.0).contains(&self.eye_center_ui)
            || self.eye_half_width_ui <= 0.0
            || self.jitter_rms_ui < 0.0
            || self.ffe_boost < 0.0
        {
            return Err(ParamsError::NonPositive("link timing/equalizer"));
        }
        Ok(())
    }
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        LinkConfig::paper().validate().unwrap();
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LinkConfig::default(), LinkConfig::paper());
    }

    #[test]
    fn bad_timing_rejected() {
        let mut c = LinkConfig::paper();
        c.eye_center_ui = 1.5;
        assert!(c.validate().is_err());
        let mut c = LinkConfig::paper();
        c.oversample = 1;
        assert!(c.validate().is_err());
        let mut c = LinkConfig::paper();
        c.ffe_boost = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vcm_is_vmid() {
        let c = LinkConfig::paper();
        assert_eq!(c.vcm(), c.params.vmid);
    }
}
