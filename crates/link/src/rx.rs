//! The receiver front end (Fig. 4): termination and the DC-test circuits.
//!
//! Functionally, the termination network returns the line to the common
//! mode through transmission-gate resistors. For test, the paper adds
//!
//! * two **DC comparators** with a 15 mV programmed offset (Fig. 5), one
//!   per polarity: with a healthy link each sees 30 mV of differential
//!   input, so a fault eroding the differential below the offset — or
//!   inverting it — flips a comparator;
//! * a **clocked window comparator** (Fig. 6) comparing the
//!   termination-derived bias against the clock-recovery-side bias
//!   generator with ±15 mV thresholds, operated at the 100 MHz scan clock
//!   so *dynamic* mismatches (the paper's transmission-gate drain-open
//!   example) are also exposed.
//!
//! # Examples
//!
//! ```
//! use link::rx::ReceiverFrontEnd;
//! use msim::units::Volt;
//!
//! let rx = ReceiverFrontEnd::new(Volt::from_mv(15.0));
//! // Healthy +30 mV differential: positive comparator fires, negative not.
//! assert_eq!(rx.dc_decision(Volt::from_mv(30.0)), (true, false));
//! // A fault eroding it to 10 mV: neither fires -> detected.
//! assert_eq!(rx.dc_decision(Volt::from_mv(10.0)), (false, false));
//! ```

use msim::blocks::comparator::Comparator;
use msim::units::Volt;

/// The receiver front end with its DC-test comparators and bias-comparison
/// window comparator.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverFrontEnd {
    offset: Volt,
    cmp_pos: Comparator,
    cmp_neg: Comparator,
    window_pos: Comparator,
    window_neg: Comparator,
}

impl ReceiverFrontEnd {
    /// Creates the front end with the given programmed comparator offset
    /// (the paper: 15 mV against a 30 mV healthy input).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not strictly positive.
    pub fn new(offset: Volt) -> ReceiverFrontEnd {
        assert!(offset.value() > 0.0, "comparator offset must be positive");
        ReceiverFrontEnd {
            offset,
            cmp_pos: Comparator::new(offset),
            cmp_neg: Comparator::new(offset),
            window_pos: Comparator::new(offset),
            window_neg: Comparator::new(offset),
        }
    }

    /// Programmed offset.
    pub fn offset(&self) -> Volt {
        self.offset
    }

    /// The two DC-comparator outputs `(positive, negative)` for a given
    /// differential input at the termination.
    ///
    /// Expected healthy readings: `(true, false)` for a driven 1,
    /// `(false, true)` for a driven 0.
    pub fn dc_decision(&self, diff: Volt) -> (bool, bool) {
        (
            self.cmp_pos.evaluate(diff, Volt::ZERO),
            self.cmp_neg.evaluate(-diff, Volt::ZERO),
        )
    }

    /// Whether the DC decision matches the expectation for the driven bit.
    pub fn dc_pass(&self, diff: Volt, driven_one: bool) -> bool {
        let expected = if driven_one {
            (true, false)
        } else {
            (false, true)
        };
        self.dc_decision(diff) == expected
    }

    /// The bias-comparison window comparator: flags when the receiver-side
    /// bias deviates from the clock-recovery-side reference by more than
    /// the programmed offset in either direction.
    pub fn bias_flagged(&self, rx_bias: Volt, ref_bias: Volt) -> bool {
        self.window_pos.evaluate(rx_bias, ref_bias) || self.window_neg.evaluate(ref_bias, rx_bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> ReceiverFrontEnd {
        ReceiverFrontEnd::new(Volt::from_mv(15.0))
    }

    #[test]
    fn healthy_link_passes_both_vectors() {
        let rx = rx();
        assert!(rx.dc_pass(Volt::from_mv(30.0), true));
        assert!(rx.dc_pass(Volt::from_mv(-30.0), false));
    }

    #[test]
    fn eroded_differential_fails() {
        let rx = rx();
        // 10 mV < 15 mV offset: neither comparator fires.
        assert!(!rx.dc_pass(Volt::from_mv(10.0), true));
        assert!(!rx.dc_pass(Volt::from_mv(-10.0), false));
    }

    #[test]
    fn inverted_differential_fails() {
        let rx = rx();
        assert!(!rx.dc_pass(Volt::from_mv(-30.0), true));
        assert_eq!(rx.dc_decision(Volt::from_mv(-30.0)), (false, true));
    }

    #[test]
    fn bias_window_flags_large_errors_only() {
        let rx = rx();
        assert!(!rx.bias_flagged(Volt(0.6), Volt(0.6)));
        assert!(!rx.bias_flagged(Volt(0.61), Volt(0.6)));
        assert!(rx.bias_flagged(Volt(0.62), Volt(0.6)));
        assert!(rx.bias_flagged(Volt(0.58), Volt(0.6)));
    }

    #[test]
    fn marginal_exact_offset_does_not_fire() {
        let rx = rx();
        // Strictly-greater semantics: exactly 15 mV is not detected as a
        // firing, mirroring a zero-margin design point.
        assert_eq!(rx.dc_decision(Volt::from_mv(15.0)), (false, false));
    }

    #[test]
    #[should_panic(expected = "offset must be positive")]
    fn zero_offset_panics() {
        let _ = ReceiverFrontEnd::new(Volt::ZERO);
    }
}
