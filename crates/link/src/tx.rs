//! The capacitively coupled feed-forward equalizing transmitter (Fig. 3).
//!
//! A weak current-source driver sets the low-swing DC levels (enabling
//! arbitrarily low activity factors), while series capacitors couple the
//! full-swing pre-driver edges onto the line, boosting the high-frequency
//! content — together a two-tap feed-forward equalizer. Per UI the driven
//! level is
//!
//! ```text
//! v(n) = Vcm ± swing/2 · ( d(n) + boost · (d(n) − d(n−1)) / 2 )
//! ```
//!
//! with `d ∈ {−1, +1}`: the classic FIR view of capacitive pre-emphasis.
//! The transmitter also carries the DFT half-cycle latch the paper adds for
//! the phase-detector test (transparent in normal operation).
//!
//! # Examples
//!
//! ```
//! use link::tx::Transmitter;
//! use msim::units::Volt;
//!
//! let mut tx = Transmitter::new(Volt(0.6), Volt::from_mv(60.0), 2.0);
//! let steady = tx.drive(true); // first 1 after a 1 history: no transition
//! let v1 = tx.drive(false);    // 1 -> 0 transition: boosted low
//! assert!(v1 < steady - Volt::from_mv(30.0));
//! ```

use msim::units::Volt;

/// The behavioral equalizing transmitter.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmitter {
    vcm: Volt,
    half_swing: Volt,
    boost: f64,
    prev: f64,
    half_cycle_delay: bool,
    pending: Option<bool>,
}

impl Transmitter {
    /// Creates a transmitter around common mode `vcm` with differential
    /// `swing` and FFE `boost` (transition tap weight; 0 disables
    /// equalization).
    ///
    /// # Panics
    ///
    /// Panics if `swing` is not strictly positive or `boost` is negative.
    pub fn new(vcm: Volt, swing: Volt, boost: f64) -> Transmitter {
        assert!(swing.value() > 0.0, "swing must be positive");
        assert!(boost >= 0.0, "boost must be non-negative");
        Transmitter {
            vcm,
            half_swing: swing / 2.0,
            boost,
            prev: 1.0,
            half_cycle_delay: false,
            pending: None,
        }
    }

    /// Enables or disables the DFT half-cycle latch. When enabled, data is
    /// delayed by half a cycle (one extra symbol slot at the behavioral
    /// level), flipping the phase detector's UP/DN verdict during the scan
    /// test — exactly the paper's mechanism for testing both PD paths.
    pub fn set_half_cycle_delay(&mut self, on: bool) {
        self.half_cycle_delay = on;
        self.pending = None;
    }

    /// Whether the half-cycle test latch is enabled.
    pub fn half_cycle_delay(&self) -> bool {
        self.half_cycle_delay
    }

    /// Common-mode output level.
    pub fn vcm(&self) -> Volt {
        self.vcm
    }

    /// Drives one bit and returns the (single-ended equivalent) line input
    /// level for this UI.
    pub fn drive(&mut self, bit: bool) -> Volt {
        let bit = if self.half_cycle_delay {
            // Behavioral half-cycle delay: emit the previous symbol.
            let out = self.pending.unwrap_or(bit);
            self.pending = Some(bit);
            out
        } else {
            bit
        };
        let d = if bit { 1.0 } else { -1.0 };
        let tap = d + self.boost * (d - self.prev) / 2.0;
        self.prev = d;
        self.vcm + self.half_swing * tap
    }

    /// Differential drive: returns `(v_plus, v_minus)` mirrored around the
    /// common mode.
    pub fn drive_differential(&mut self, bit: bool) -> (Volt, Volt) {
        let v = self.drive(bit);
        let dev = v - self.vcm;
        (self.vcm + dev, self.vcm - dev)
    }

    /// The steady-state (no transition) level for a bit.
    pub fn dc_level(&self, bit: bool) -> Volt {
        let d = if bit { 1.0 } else { -1.0 };
        self.vcm + self.half_swing * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tx() -> Transmitter {
        Transmitter::new(Volt(0.6), Volt::from_mv(60.0), 2.0)
    }

    #[test]
    fn steady_state_levels() {
        let tx = paper_tx();
        assert!((tx.dc_level(true).mv() - 630.0).abs() < 1e-9);
        assert!((tx.dc_level(false).mv() - 570.0).abs() < 1e-9);
    }

    #[test]
    fn transitions_are_boosted() {
        let mut tx = paper_tx();
        tx.drive(true);
        tx.drive(true);
        // 1 -> 0 with boost 2: tap = -1 + 2*(-2)/2 = -3 -> 600 - 90 = 510 mV.
        let v = tx.drive(false);
        assert!((v.mv() - 510.0).abs() < 1e-9);
        // 0 -> 0: back to the weak-driver level.
        let v = tx.drive(false);
        assert!((v.mv() - 570.0).abs() < 1e-9);
    }

    #[test]
    fn zero_boost_is_plain_nrz() {
        let mut tx = Transmitter::new(Volt(0.6), Volt::from_mv(60.0), 0.0);
        for (bit, mv) in [(true, 630.0), (false, 570.0), (true, 630.0)] {
            let v = tx.drive(bit);
            assert!((v.mv() - mv).abs() < 1e-9);
        }
    }

    #[test]
    fn differential_is_symmetric() {
        let mut tx = paper_tx();
        let (p, m) = tx.drive_differential(true);
        assert!(((p + m) / 2.0 - Volt(0.6)).abs().mv() < 1e-9);
        assert!(p > m);
        let (p, m) = tx.drive_differential(false);
        assert!(p < m);
    }

    #[test]
    fn half_cycle_latch_delays_by_one_symbol() {
        let mut tx = paper_tx();
        tx.set_half_cycle_delay(true);
        assert!(tx.half_cycle_delay());
        // First call: nothing pending, passes through.
        let a = tx.drive(true);
        // Next drives emit the previous symbol.
        let b = tx.drive(false); // emits the pending `true`
        assert!(
            b >= a - Volt::from_mv(1.0),
            "latched symbol should still be high"
        );
        let c = tx.drive(false); // now the `false` emerges (with transition boost)
        assert!(c < Volt(0.6));
    }

    #[test]
    #[should_panic(expected = "swing must be positive")]
    fn zero_swing_panics() {
        let _ = Transmitter::new(Volt(0.6), Volt::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "boost must be non-negative")]
    fn negative_boost_panics() {
        let _ = Transmitter::new(Volt(0.6), Volt::from_mv(60.0), -0.5);
    }
}
