//! Structural netlists of the link's analog blocks.
//!
//! Transcribed from the paper's schematics (Figs. 3–9) at the granularity
//! the structural fault model needs: every MOS carries its circuit role
//! and differential-arm / comparator-side instance, every capacitor its
//! role. The exact device count of the authors' UMC 130 nm layout is not
//! published; where a figure shows a block symbolically (pre-drivers,
//! tapered line buffer, VCDL stages) we use conventional implementations
//! at typical sizes and record the choice here:
//!
//! | block | devices | composition |
//! |---|---|---|
//! | TX driver (Fig. 3) | 40 MOS + 4 C | 2 pre-driver inverters and a 5-stage tapered buffer per arm, 2-finger-per-arm differential gm stage, 2-finger tail, 2-device bias mirror, `Cs`+`αCs` per arm |
//! | termination (Fig. 4) | 12 MOS + 3 C | two transmission-gate resistor segments per arm, 4-device Vcm divider, AC-coupling caps |
//! | RX bias | 4 MOS | stacked diode divider |
//! | window comparator (Fig. 6) | 16 MOS | two clocked comparators (input pair, mirror, tail, clock switch, output inverter) |
//! | weak charge pump (Fig. 8) | 13 MOS + 2 C | UP/DN switches, source/sink, 2-switch + 2-source balance arm, 5-device balancing amplifier, loop-filter and balance caps |
//! | strong charge pump (Fig. 8) | 4 MOS | UPst/DNst switches, source/sink |
//! | VCDL | 10 MOS | two current-starved stages + 2-device bias mirror |
//!
//! Test circuitry (the Fig. 5 DC comparator and the Fig. 9 CP-BIST window
//! comparator) is also provided for the Table II overhead accounting, but
//! excluded from the functional fault universe per the paper.
//!
//! # Examples
//!
//! ```
//! use link::netlists::functional_netlists;
//! use msim::fault::FaultUniverse;
//!
//! let blocks = functional_netlists();
//! let universe = FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)));
//! // 99 MOS * 6 faults + 9 capacitor shorts.
//! assert_eq!(universe.len(), 99 * 6 + 9);
//! ```

use msim::netlist::{BlockKind, Capacitor, DeviceRole, Mos, MosType, Netlist};

/// The transmitter of Fig. 3 (differential: instance 0 = plus arm,
/// 1 = minus arm).
pub fn tx_driver() -> Netlist {
    let mut nl = Netlist::new("tx-driver");
    for arm in 0..2u8 {
        let a = if arm == 0 { "p" } else { "m" };
        // Pre-driver inverters feeding the FFE capacitor plates (nodes
        // probed by the DFT scan flip-flops).
        for stage in 0..2 {
            nl.add_mos(
                Mos::new(
                    format!("MPD{stage}{a}_P"),
                    MosType::Pmos,
                    2.0,
                    0.13,
                    DeviceRole::TxPreDrvP,
                )
                .with_instance(arm),
            );
            nl.add_mos(
                Mos::new(
                    format!("MPD{stage}{a}_N"),
                    MosType::Nmos,
                    1.0,
                    0.13,
                    DeviceRole::TxPreDrvN,
                )
                .with_instance(arm),
            );
        }
        // FFE series capacitors: main and fractional tap.
        nl.add_capacitor(
            Capacitor::new(format!("Cs_{a}"), 120e-15, DeviceRole::FfeCapMain).with_instance(arm),
        );
        nl.add_capacitor(
            Capacitor::new(format!("Csa_{a}"), 45e-15, DeviceRole::FfeCapFraction)
                .with_instance(arm),
        );
        // Weak-driver gm stage: two fingers of input and load per arm.
        for f in 0..2 {
            nl.add_mos(
                Mos::new(
                    format!("MI{f}{a}"),
                    MosType::Nmos,
                    4.0,
                    0.13,
                    if arm == 0 {
                        DeviceRole::TxInputPlus
                    } else {
                        DeviceRole::TxInputMinus
                    },
                )
                .with_instance(arm),
            );
            nl.add_mos(
                Mos::new(
                    format!("ML{f}{a}"),
                    MosType::Pmos,
                    6.0,
                    0.13,
                    if arm == 0 {
                        DeviceRole::TxLoadPlus
                    } else {
                        DeviceRole::TxLoadMinus
                    },
                )
                .with_instance(arm),
            );
        }
        // Tapered line buffer (5 stages) between pre-driver and line.
        for stage in 0..5 {
            nl.add_mos(
                Mos::new(
                    format!("MB{stage}{a}_P"),
                    MosType::Pmos,
                    (stage + 1) as f64 * 3.0,
                    0.13,
                    DeviceRole::TxBufP,
                )
                .with_instance(arm),
            );
            nl.add_mos(
                Mos::new(
                    format!("MB{stage}{a}_N"),
                    MosType::Nmos,
                    (stage + 1) as f64 * 1.5,
                    0.13,
                    DeviceRole::TxBufN,
                )
                .with_instance(arm),
            );
        }
    }
    // Shared tail (two fingers) and its bias mirror.
    for f in 0..2 {
        nl.add_mos(Mos::new(
            format!("MT{f}"),
            MosType::Nmos,
            8.0,
            0.26,
            DeviceRole::TxTail,
        ));
    }
    // Instance 0 is the diode-connected mirror reference.
    for f in 0..2u8 {
        nl.add_mos(
            Mos::new(
                format!("MBM{f}"),
                MosType::Nmos,
                2.0,
                0.26,
                DeviceRole::TxBiasMirror,
            )
            .with_instance(f),
        );
    }
    nl
}

/// The receiver termination of Fig. 4.
pub fn termination() -> Netlist {
    let mut nl = Netlist::new("termination");
    for arm in 0..2u8 {
        let a = if arm == 0 { "p" } else { "m" };
        // Two transmission-gate resistor segments per arm (R+x / R-x).
        for seg in 0..2 {
            nl.add_mos(
                Mos::new(
                    format!("MTG{seg}{a}_N"),
                    MosType::Nmos,
                    1.0,
                    0.5,
                    DeviceRole::TermTgNmos,
                )
                .with_instance(arm),
            );
            nl.add_mos(
                Mos::new(
                    format!("MTG{seg}{a}_P"),
                    MosType::Pmos,
                    2.0,
                    0.5,
                    DeviceRole::TermTgPmos,
                )
                .with_instance(arm),
            );
        }
        // AC-coupling capacitor into the comparators.
        nl.add_capacitor(
            Capacitor::new(format!("Cc_{a}"), 80e-15, DeviceRole::CouplingCap).with_instance(arm),
        );
    }
    // Vcm divider (stacked diodes) shared by both arms.
    for i in 0..4 {
        nl.add_mos(Mos::new(
            format!("MVCM{i}"),
            MosType::Nmos,
            0.5,
            1.0,
            DeviceRole::TermBias,
        ));
    }
    // Window-comparator input coupling cap.
    nl.add_capacitor(Capacitor::new("Cw", 60e-15, DeviceRole::CouplingCap).with_instance(0));
    nl
}

/// The receiver-side voltage-divider bias generator.
pub fn rx_bias() -> Netlist {
    let mut nl = Netlist::new("rx-bias");
    // Instance 0 is the diode-connected top of the stack.
    for i in 0..4u8 {
        nl.add_mos(
            Mos::new(
                format!("MD{i}"),
                MosType::Nmos,
                0.5,
                1.0,
                DeviceRole::RxBiasDivider,
            )
            .with_instance(i),
        );
    }
    nl
}

/// One clocked comparator at the paper's Fig. 6 sizing, tagged with
/// `instance` (0 = `VH` half, 1 = `VL` half).
/// One clocked comparator half (Fig. 6 topology) with full node
/// connectivity: the clock switch gates the tail, the mirror folds onto
/// the decision node, the inverter squares the output.
/// One comparator device row: (name, type, w, l, role, [d, g, s] nodes).
type CmpDev = (&'static str, MosType, f64, f64, DeviceRole, [String; 3]);

fn clocked_comparator(nl: &mut Netlist, instance: u8, tag: &str) {
    let n = |base: &str| format!("{base}_{tag}");
    let devs: [CmpDev; 8] = [
        (
            "MIP",
            MosType::Nmos,
            0.8,
            0.5,
            DeviceRole::CmpInputPlus,
            [n("ndiode"), "inp".into(), n("ntail")],
        ),
        (
            "MIN",
            MosType::Nmos,
            0.5,
            0.5,
            DeviceRole::CmpInputMinus,
            [n("nout1"), "inn".into(), n("ntail")],
        ),
        (
            "MMD",
            MosType::Pmos,
            0.5,
            0.5,
            DeviceRole::CmpMirrorDiode,
            [n("ndiode"), n("ndiode"), "vdd".into()],
        ),
        (
            "MMO",
            MosType::Pmos,
            0.5,
            0.5,
            DeviceRole::CmpMirrorOut,
            [n("nout1"), n("ndiode"), "vdd".into()],
        ),
        (
            "MT",
            MosType::Nmos,
            0.5,
            0.5,
            DeviceRole::CmpTail,
            [n("nsw"), "vbn".into(), "gnd".into()],
        ),
        (
            "MCK",
            MosType::Nmos,
            0.5,
            0.13,
            DeviceRole::CmpClockSwitch,
            [n("ntail"), "clk".into(), n("nsw")],
        ),
        (
            "MOP",
            MosType::Pmos,
            0.5,
            0.13,
            DeviceRole::CmpOutInvP,
            [n("outq"), n("nout1"), "vdd".into()],
        ),
        (
            "MON",
            MosType::Nmos,
            0.5,
            0.13,
            DeviceRole::CmpOutInvN,
            [n("outq"), n("nout1"), "gnd".into()],
        ),
    ];
    for (name, t, w, l, role, [d, g, src]) in devs {
        nl.add_mos(
            Mos::new(format!("{name}_{tag}"), t, w, l, role)
                .with_instance(instance)
                .with_nodes(d, g, src),
        );
    }
}

/// The functional window comparator of the coarse loop (Fig. 6 topology,
/// two halves for `VH` and `VL`).
pub fn window_comparator() -> Netlist {
    let mut nl = Netlist::new("window-comparator");
    clocked_comparator(&mut nl, 0, "H");
    clocked_comparator(&mut nl, 1, "L");
    nl
}

/// The weak charge pump with its charge-balancing arm and amplifier
/// (Fig. 8).
pub fn weak_charge_pump() -> Netlist {
    let mut nl = Netlist::new("weak-charge-pump");
    nl.add_mos(Mos::new(
        "MSU",
        MosType::Pmos,
        1.0,
        0.13,
        DeviceRole::CpSwitchUp,
    ));
    nl.add_mos(Mos::new(
        "MSD",
        MosType::Nmos,
        0.5,
        0.13,
        DeviceRole::CpSwitchDn,
    ));
    nl.add_mos(Mos::new(
        "MCP",
        MosType::Pmos,
        2.0,
        0.5,
        DeviceRole::CpSourceP,
    ));
    nl.add_mos(Mos::new(
        "MCN",
        MosType::Nmos,
        1.0,
        0.5,
        DeviceRole::CpSinkN,
    ));
    for i in 0..2u8 {
        nl.add_mos(
            Mos::new(
                format!("MBS{i}"),
                MosType::Pmos,
                1.0,
                0.13,
                DeviceRole::CpBalanceSwitch,
            )
            .with_instance(i),
        );
        nl.add_mos(
            Mos::new(
                format!("MBC{i}"),
                MosType::Nmos,
                1.0,
                0.5,
                DeviceRole::CpBalanceSource,
            )
            .with_instance(i),
        );
        nl.add_mos(
            Mos::new(
                format!("MAI{i}"),
                MosType::Nmos,
                1.0,
                0.5,
                DeviceRole::CpAmpInput,
            )
            .with_instance(i),
        );
        nl.add_mos(
            Mos::new(
                format!("MAM{i}"),
                MosType::Pmos,
                1.0,
                0.5,
                DeviceRole::CpAmpMirror,
            )
            .with_instance(i),
        );
    }
    nl.add_mos(Mos::new(
        "MAT",
        MosType::Nmos,
        1.0,
        0.5,
        DeviceRole::CpAmpTail,
    ));
    nl.add_capacitor(Capacitor::new("Cloop", 2e-12, DeviceRole::LoopFilterCap));
    nl.add_capacitor(Capacitor::new("Cbal", 0.5e-12, DeviceRole::BalanceCap));
    nl
}

/// The strong charge pump (Fig. 8).
pub fn strong_charge_pump() -> Netlist {
    let mut nl = Netlist::new("strong-charge-pump");
    nl.add_mos(Mos::new(
        "MSU",
        MosType::Pmos,
        4.0,
        0.13,
        DeviceRole::CpSwitchUp,
    ));
    nl.add_mos(Mos::new(
        "MSD",
        MosType::Nmos,
        2.0,
        0.13,
        DeviceRole::CpSwitchDn,
    ));
    nl.add_mos(Mos::new(
        "MCP",
        MosType::Pmos,
        8.0,
        0.5,
        DeviceRole::CpSourceP,
    ));
    nl.add_mos(Mos::new(
        "MCN",
        MosType::Nmos,
        4.0,
        0.5,
        DeviceRole::CpSinkN,
    ));
    nl
}

/// The fine-loop VCDL: three current-starved stages plus the bias mirror.
pub fn vcdl() -> Netlist {
    let mut nl = Netlist::new("vcdl");
    for stage in 0..2u8 {
        nl.add_mos(
            Mos::new(
                format!("MIP{stage}"),
                MosType::Pmos,
                2.0,
                0.13,
                DeviceRole::VcdlInvP,
            )
            .with_instance(stage),
        );
        nl.add_mos(
            Mos::new(
                format!("MIN{stage}"),
                MosType::Nmos,
                1.0,
                0.13,
                DeviceRole::VcdlInvN,
            )
            .with_instance(stage),
        );
        nl.add_mos(
            Mos::new(
                format!("MSN{stage}"),
                MosType::Nmos,
                1.0,
                0.26,
                DeviceRole::VcdlStarveN,
            )
            .with_instance(stage),
        );
        nl.add_mos(
            Mos::new(
                format!("MSP{stage}"),
                MosType::Pmos,
                2.0,
                0.26,
                DeviceRole::VcdlStarveP,
            )
            .with_instance(stage),
        );
    }
    // Instance 0 is the diode-connected mirror reference.
    for i in 0..2u8 {
        nl.add_mos(
            Mos::new(
                format!("MBV{i}"),
                MosType::Nmos,
                1.0,
                0.5,
                DeviceRole::VcdlBias,
            )
            .with_instance(i),
        );
    }
    nl
}

/// The DC-test comparator of Fig. 5 (test circuitry): input pair with the
/// deliberate 0.8 µ / 0.5 µ mismatch, mirror, tail, output inverter.
///
/// This schematic is fully drawn in the paper, so the netlist carries the
/// actual node connectivity (exported by `Netlist::to_spice`): the
/// mismatched input pair shares the tail node, the PMOS mirror folds the
/// diode side onto the output side, and the inverter squares up `Q`.
pub fn dc_test_comparator() -> Netlist {
    let mut nl = Netlist::new("dc-test-comparator");
    nl.add_mos(
        Mos::new("MIP", MosType::Nmos, 0.8, 0.5, DeviceRole::CmpInputPlus)
            .with_nodes("ndiode", "inp", "ntail"),
    );
    nl.add_mos(
        Mos::new("MIN", MosType::Nmos, 0.5, 0.5, DeviceRole::CmpInputMinus)
            .with_nodes("nout1", "inn", "ntail"),
    );
    nl.add_mos(
        Mos::new("MMD", MosType::Pmos, 0.5, 0.5, DeviceRole::CmpMirrorDiode)
            .with_nodes("ndiode", "ndiode", "vdd"),
    );
    nl.add_mos(
        Mos::new("MMO", MosType::Pmos, 0.5, 0.5, DeviceRole::CmpMirrorOut)
            .with_nodes("nout1", "ndiode", "vdd"),
    );
    nl.add_mos(
        Mos::new("MT", MosType::Nmos, 0.5, 0.5, DeviceRole::CmpTail)
            .with_nodes("ntail", "vbn", "gnd"),
    );
    nl.add_mos(
        Mos::new("MOP", MosType::Pmos, 0.5, 0.13, DeviceRole::CmpOutInvP)
            .with_nodes("outq", "nout1", "vdd"),
    );
    nl.add_mos(
        Mos::new("MON", MosType::Nmos, 0.5, 0.13, DeviceRole::CmpOutInvN)
            .with_nodes("outq", "nout1", "gnd"),
    );
    nl
}

/// The CP-BIST window comparator of Fig. 9 (test circuitry): two
/// comparators with the 1 µ / 0.2 µ programmed-offset devices.
pub fn cp_bist_comparator() -> Netlist {
    let mut nl = Netlist::new("cp-bist-comparator");
    for half in 0..2u8 {
        let tag = if half == 0 { "H" } else { "L" };
        let devs: [(&str, MosType, f64, f64, DeviceRole); 8] = [
            ("MIP", MosType::Nmos, 1.0, 0.2, DeviceRole::CmpInputPlus),
            ("MIN", MosType::Nmos, 0.2, 1.0, DeviceRole::CmpInputMinus),
            ("MMD", MosType::Pmos, 0.5, 0.5, DeviceRole::CmpMirrorDiode),
            ("MMO", MosType::Pmos, 0.5, 0.5, DeviceRole::CmpMirrorOut),
            ("MT", MosType::Nmos, 0.5, 0.5, DeviceRole::CmpTail),
            ("MCK", MosType::Nmos, 0.5, 0.13, DeviceRole::CmpClockSwitch),
            ("MOP", MosType::Pmos, 0.5, 0.13, DeviceRole::CmpOutInvP),
            ("MON", MosType::Nmos, 0.5, 0.13, DeviceRole::CmpOutInvN),
        ];
        for (name, t, w, l, role) in devs {
            nl.add_mos(Mos::new(format!("{name}_{tag}"), t, w, l, role).with_instance(half));
        }
    }
    nl
}

/// All functional analog blocks — the paper's structural fault universe.
pub fn functional_netlists() -> Vec<(BlockKind, Netlist)> {
    vec![
        (BlockKind::TxDriver, tx_driver()),
        (BlockKind::Termination, termination()),
        (BlockKind::RxBias, rx_bias()),
        (BlockKind::WindowComparator, window_comparator()),
        (BlockKind::WeakChargePump, weak_charge_pump()),
        (BlockKind::StrongChargePump, strong_charge_pump()),
        (BlockKind::Vcdl, vcdl()),
    ]
}

/// The DFT test-circuitry blocks (for overhead accounting; excluded from
/// the functional fault universe).
pub fn test_circuit_netlists() -> Vec<(BlockKind, Netlist)> {
    vec![
        (BlockKind::DcTestComparator, dc_test_comparator()),
        (BlockKind::CpBistComparator, cp_bist_comparator()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::effects::resolve_effect;
    use msim::fault::FaultUniverse;
    use msim::params::DesignParams;

    #[test]
    fn documented_device_counts() {
        assert_eq!(tx_driver().mos_count(), 40);
        assert_eq!(tx_driver().capacitor_count(), 4);
        assert_eq!(termination().mos_count(), 12);
        assert_eq!(termination().capacitor_count(), 3);
        assert_eq!(rx_bias().mos_count(), 4);
        assert_eq!(window_comparator().mos_count(), 16);
        assert_eq!(weak_charge_pump().mos_count(), 13);
        assert_eq!(weak_charge_pump().capacitor_count(), 2);
        assert_eq!(strong_charge_pump().mos_count(), 4);
        assert_eq!(vcdl().mos_count(), 10);
    }

    #[test]
    fn universe_size() {
        let blocks = functional_netlists();
        let mos: usize = blocks.iter().map(|(_, n)| n.mos_count()).sum();
        let caps: usize = blocks.iter().map(|(_, n)| n.capacitor_count()).sum();
        assert_eq!(mos, 99);
        assert_eq!(caps, 9);
        let u = FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)));
        assert_eq!(u.len(), mos * 6 + caps);
    }

    #[test]
    fn every_functional_fault_resolves() {
        // The resolver must have a mapping for every enumerated fault
        // (panics mean a role/block mismatch in the netlists).
        let p = DesignParams::paper();
        let blocks = functional_netlists();
        let u = FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)));
        for f in &u {
            let _ = resolve_effect(f, &p);
        }
    }

    #[test]
    fn test_circuitry_marked() {
        for (b, _) in test_circuit_netlists() {
            assert!(b.is_test_circuitry());
        }
        for (b, _) in functional_netlists() {
            assert!(!b.is_test_circuitry());
        }
    }

    #[test]
    fn fig5_netlist_connectivity_is_closed() {
        let nl = dc_test_comparator();
        assert!(
            nl.dangling_nodes().is_empty(),
            "dangling: {:?}",
            nl.dangling_nodes()
        );
        let spice = nl.to_spice();
        assert!(spice.contains("MIP ndiode inp ntail gnd NMOS W=0.8u L=0.5u"));
        assert!(spice.contains("MMD ndiode ndiode vdd vdd PMOS"));
        // Every device appears.
        for name in ["MIP", "MIN", "MMD", "MMO", "MT", "MOP", "MON"] {
            assert!(spice.contains(name), "{name} missing from export");
        }
    }

    #[test]
    fn fig6_window_comparator_connectivity_is_closed() {
        let nl = window_comparator();
        assert!(
            nl.dangling_nodes().is_empty(),
            "dangling: {:?}",
            nl.dangling_nodes()
        );
        let spice = nl.to_spice();
        // Both halves present with per-half internal nodes.
        assert!(spice.contains("MCK_H ntail_H clk nsw_H gnd NMOS"));
        assert!(spice.contains("MCK_L ntail_L clk nsw_L gnd NMOS"));
    }

    #[test]
    fn symbolic_blocks_export_role_placeholders() {
        let spice = tx_driver().to_spice();
        assert!(spice.contains("* block: tx-driver"));
        assert!(spice.contains("role=tx-input+"));
    }

    #[test]
    fn comparator_offset_sizing_from_paper() {
        // Fig. 5: the input pair is deliberately mismatched 0.8µ vs 0.5µ.
        let nl = dc_test_comparator();
        let plus = &nl.devices()[0];
        let minus = &nl.devices()[1];
        assert!(plus.as_mos().unwrap().w_um() > minus.as_mos().unwrap().w_um());
    }

    #[test]
    fn window_halves_are_tagged() {
        let nl = window_comparator();
        let h: usize = nl.devices().iter().filter(|d| d.instance() == 0).count();
        let l: usize = nl.devices().iter().filter(|d| d.instance() == 1).count();
        assert_eq!(h, 8);
        assert_eq!(l, 8);
    }
}
