//! Acceptance tests for the link-farm sweep grid: determinism across
//! thread counts, checkpoint kill/resume, and the pinned demonstration
//! that the crosstalk coupling axis changes detection and BER records.

use link::farm::{
    grid_csv, CellRecord, FarmAxes, FarmGrid, LinkFarm, FARM_SHARD_SIZE, RECORD_BYTES,
};
use rt::exec::{Checkpoint, RetryPolicy, Sabotage, Shard, ShardJob};

/// A ≥1000-cell grid kept cheap for debug-mode CI: few segments, short
/// bit streams come from the farm itself.
fn big_axes() -> FarmAxes {
    FarmAxes {
        lengths_mm: vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 22.0],
        swings_mv: vec![40.0, 60.0, 80.0],
        segments: vec![3],
        sigmas_mv: vec![0.0, 6.0, 12.0],
        rates_gbps: vec![1.0, 2.5],
        lanes: vec![1, 4],
        couplings: vec![0.0, 0.04, 0.08],
    }
}

#[test]
fn thousand_cell_sweep_is_byte_identical_at_any_thread_count() {
    let grid = FarmGrid::new(big_axes(), 11).unwrap();
    assert!(grid.total() >= 1000, "grid too small: {}", grid.total());
    let farm = LinkFarm::new(grid);
    assert!(farm.plan().len() > 1, "must actually shard");

    let baseline = farm.run(1, &RetryPolicy::none(), None);
    assert!(baseline.is_complete());
    assert_eq!(baseline.records.len(), farm.grid().total());
    let csv = grid_csv(farm.grid(), &baseline.records);
    for threads in [2, 4, 7] {
        let report = farm.run(threads, &RetryPolicy::none(), None);
        assert!(report.is_complete());
        assert_eq!(
            report.records, baseline.records,
            "records diverge at {threads} threads"
        );
        assert_eq!(
            grid_csv(farm.grid(), &report.records),
            csv,
            "CSV bytes diverge at {threads} threads"
        );
    }
}

/// A farm whose shard runner trips a sabotage panic — the kill half of
/// the kill/resume acceptance test.
struct SabotagedFarm<'a> {
    farm: &'a LinkFarm,
    sabotage: Sabotage,
}

impl ShardJob for SabotagedFarm<'_> {
    type Record = CellRecord;

    fn run(&self, shard: &Shard) -> Vec<CellRecord> {
        self.sabotage.trip(shard.index);
        self.farm.run_shard(shard)
    }

    fn encode(&self, shard: &Shard, records: &[CellRecord], out: &mut Vec<u8>) {
        self.farm.encode(shard, records, out);
    }

    fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<CellRecord>> {
        self.farm.decode(shard, payload)
    }
}

#[test]
fn interrupted_sweep_resumes_byte_identically_from_checkpoint() {
    let mut axes = big_axes();
    axes.swings_mv = vec![60.0]; // 360 cells: several shards, fast
    let farm = LinkFarm::new(FarmGrid::new(axes, 11).unwrap());
    let plan = farm.plan();
    assert!(plan.len() >= 3);
    let reference = farm.run(2, &RetryPolicy::none(), None);
    assert!(reference.is_complete());

    let dir = std::env::temp_dir().join(format!("farm_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("farm.ck");
    let fp = farm.fingerprint();

    // First run: the last shard's panic kills the sweep mid-flight.
    let dead = plan.len() - 1;
    {
        let mut ck = Checkpoint::open(&path, fp).unwrap();
        let sab = SabotagedFarm {
            farm: &farm,
            sabotage: Sabotage::times(dead, u32::MAX),
        };
        let report = rt::exec::run_shards(2, &RetryPolicy::none(), Some(&mut ck), &plan, &sab);
        assert!(!report.is_complete());
        assert_eq!(report.incomplete.len(), 1);
        assert_eq!(report.incomplete[0].shard, dead);
    }

    // Second run: every surviving shard restores from the checkpoint,
    // only the killed one recomputes — and the records match a clean
    // run byte for byte.
    let mut ck = Checkpoint::open(&path, fp).unwrap();
    let report = farm.run(4, &RetryPolicy::none(), Some(&mut ck));
    assert!(report.is_complete());
    assert_eq!(report.summary.resumed, plan.len() - 1);
    assert_eq!(report.records, reference.records);
    assert_eq!(
        grid_csv(farm.grid(), &report.records),
        grid_csv(farm.grid(), &reference.records)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coupling_axis_changes_detection_and_ber_records() {
    // One wire, one mismatch population, two coupling regimes: quiet
    // neighbors vs 8% coupling from each of two aggressors.
    let mut axes = FarmAxes::paper_point();
    axes.lanes = vec![4];
    axes.sigmas_mv = vec![8.0];
    axes.couplings = vec![0.0, 0.08];
    let farm = LinkFarm::new(FarmGrid::new(axes, 7).unwrap());
    let report = farm.run(1, &RetryPolicy::none(), None);
    assert!(report.is_complete());
    let quiet = &report.records[0];
    let noisy = &report.records[1];

    // The coupled eye closes by several millivolts...
    assert_eq!(quiet.eye_coupled_mv, quiet.eye_uncoupled_mv);
    assert!(
        noisy.eye_coupled_mv < noisy.eye_uncoupled_mv - 5.0,
        "coupling must close the eye: {} vs {}",
        noisy.eye_coupled_mv,
        noisy.eye_uncoupled_mv
    );
    // ...the BER record degrades by orders of magnitude...
    assert!(
        noisy.ber > quiet.ber * 1e3,
        "BER must degrade: {:.3e} vs {:.3e}",
        noisy.ber,
        quiet.ber
    );
    assert!(quiet.margin_ui > 0.0);
    // ...and mismatch instances that pass with quiet neighbors fail
    // when the aggressors switch: crosstalk-activated faults the DC
    // tier cannot see.
    assert_eq!(quiet.xtalk_activated(), 0);
    assert!(
        noisy.xtalk_activated() > 0,
        "coupling must activate at-speed failures: {noisy:?}"
    );
    assert!(noisy.failing > quiet.failing);
    assert!(
        noisy.at_speed_only() > 0,
        "some activated faults must escape the DC test: {noisy:?}"
    );
}

#[test]
fn plan_is_a_function_of_the_grid_only() {
    let farm = LinkFarm::new(FarmGrid::new(big_axes(), 11).unwrap());
    let a = farm.plan();
    let b = farm.plan();
    assert_eq!(a, b);
    assert_eq!(a.len(), farm.grid().total().div_ceil(FARM_SHARD_SIZE));
    // A different seed re-keys every shard without changing the cuts.
    let other = LinkFarm::new(FarmGrid::new(big_axes(), 12).unwrap());
    let c = other.plan();
    assert_eq!(a.len(), c.len());
    assert!(a
        .iter()
        .zip(&c)
        .all(|(x, y)| x.start == y.start && x.len == y.len && x.seed != y.seed));
}

#[test]
fn record_bytes_matches_encoded_size() {
    let farm = LinkFarm::new(FarmGrid::new(FarmAxes::paper_point(), 1).unwrap());
    let plan = farm.plan();
    let records = farm.run_shard(&plan[0]);
    let mut out = Vec::new();
    farm.encode(&plan[0], &records, &mut out);
    assert_eq!(out.len(), records.len() * RECORD_BYTES);
}
