//! The scan-test tier.
//!
//! The paper's central DFT contribution: fold the analog blocks into the
//! two digital scan chains so standard scan patterns also exercise them.
//! This tier simulates the paper's scan procedures:
//!
//! 1. **Chain A capture** — the added flip-flops probing the FFE capacitor
//!    driver plates observe every node up to the series capacitors.
//! 2. **Toggling pattern at 100 MHz** — the clocked window comparator at
//!    the termination flags *dynamic* mismatches (e.g. a transmission-gate
//!    drain open) that the DC tier cannot see, plus any static error.
//! 3. **Charge pump as a combinational element** — with the current-source
//!    biases tied to the rails, chain A drives the PD to assert UP/DN and
//!    the control voltage must reach each rail; the control FSM must then
//!    reset it into the window through the strong pump, and the window
//!    comparator's capture flip-flops must read Inside/Above/Below at the
//!    forced inputs. Crucially, the rail-tied biases *mask* current-
//!    magnitude faults (a drain–source shorted current source behaves
//!    exactly like the intended switch) — the paper's motivation for the
//!    BIST tier.
//!
//! # Examples
//!
//! ```
//! use dft::scan_test::ScanTest;
//! use msim::effects::{AnalogEffect, Pump, PumpDir};
//! use msim::params::DesignParams;
//! use msim::units::Volt;
//!
//! let scan = ScanTest::new(&DesignParams::paper());
//! // The DC-invisible dynamic mismatch is caught by the toggling check.
//! assert!(scan.detects(&AnalogEffect::DynamicImbalance { dv: Volt::from_mv(20.0) }));
//! // The masked current-source fault is NOT caught (BIST territory).
//! assert!(!scan.detects(&AnalogEffect::CpCurrentScale {
//!     pump: Pump::Strong, dir: PumpDir::Up, factor: 20.0 }));
//! ```

use link::rx::ReceiverFrontEnd;
use msim::blocks::charge_pump::{ChargePump, CpFaults};
use msim::blocks::comparator::{WindowComparator, WindowDecision};
use msim::effects::{AnalogEffect, Pump, PumpDir, WindowSide};
use msim::params::DesignParams;
use msim::units::Volt;

/// Builds the weak/strong charge-pump fault hooks implied by an effect.
pub fn cp_faults_from_effect(effect: &AnalogEffect) -> (CpFaults, CpFaults) {
    let mut weak = CpFaults::none();
    let mut strong = CpFaults::none();
    match *effect {
        AnalogEffect::CpDead { pump, dir } => {
            let f = match pump {
                Pump::Weak => &mut weak,
                Pump::Strong => &mut strong,
            };
            match dir {
                PumpDir::Up => f.dead_up = true,
                PumpDir::Down => f.dead_down = true,
            }
        }
        AnalogEffect::CpAlwaysOn { pump, dir } => {
            let f = match pump {
                Pump::Weak => &mut weak,
                Pump::Strong => &mut strong,
            };
            f.always_on = Some(dir);
        }
        AnalogEffect::CpCurrentScale { pump, dir, factor } => {
            let f = match pump {
                Pump::Weak => &mut weak,
                Pump::Strong => &mut strong,
            };
            match dir {
                PumpDir::Up => f.up_scale = factor,
                PumpDir::Down => f.down_scale = factor,
            }
        }
        _ => {}
    }
    (weak, strong)
}

/// Builds the coarse-loop window comparator implied by an effect.
pub fn window_from_effect(effect: &AnalogEffect, p: &DesignParams) -> WindowComparator {
    let w = WindowComparator::new(p.window_low, p.window_high);
    match *effect {
        AnalogEffect::WindowStuck { side, output } => match side {
            WindowSide::High => w.with_high_stuck(output),
            WindowSide::Low => w.with_low_stuck(output),
        },
        AnalogEffect::WindowThresholdShift { side, dv } => match side {
            WindowSide::High => w.with_high_shift(dv),
            WindowSide::Low => w.with_low_shift(dv),
        },
        _ => w,
    }
}

/// The scan-test tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanTest {
    p: DesignParams,
    rx: ReceiverFrontEnd,
}

impl ScanTest {
    /// Creates the tier at a design point.
    pub fn new(p: &DesignParams) -> ScanTest {
        ScanTest {
            rx: ReceiverFrontEnd::new(p.cmp_offset),
            p: p.clone(),
        }
    }

    /// Whether the full scan procedure detects the effect.
    pub fn detects(&self, effect: &AnalogEffect) -> bool {
        self.chain_capture_detects(effect)
            || self.toggling_detects(effect)
            || self.cp_combinational_detects(effect)
    }

    /// Chain A capture through the probe flip-flops on the FFE capacitor
    /// plates.
    fn chain_capture_detects(&self, effect: &AnalogEffect) -> bool {
        matches!(effect, AnalogEffect::DataPathStuck)
    }

    /// Toggling pattern at the 100 MHz scan frequency, observed by the
    /// clocked window comparator and the offset comparators at the
    /// termination. Sees everything the DC test sees *plus* dynamic
    /// mismatches.
    fn toggling_detects(&self, effect: &AnalogEffect) -> bool {
        let nominal = self.p.dc_test_input();
        // Differential magnitude while toggling (worst polarity).
        let toggling = match *effect {
            AnalogEffect::DynamicImbalance { dv } | AnalogEffect::ArmImbalance { dv } => {
                nominal - dv
            }
            AnalogEffect::SwingScale { factor } => nominal * factor,
            AnalogEffect::LineArmStuck { .. } => -nominal, // one phase inverted
            AnalogEffect::CouplingDcShift { dv } => nominal - dv.abs(),
            _ => nominal,
        };
        if !self.rx.dc_pass(toggling, true) {
            return true;
        }
        // Bias comparison also runs during scan.
        let bias_err = match *effect {
            AnalogEffect::CommonModeShift { dv } | AnalogEffect::BiasShift { dv } => dv,
            _ => Volt::ZERO,
        };
        self.rx.bias_flagged(self.p.vmid + bias_err, self.p.vmid)
    }

    /// The charge-pump-as-combinational-element procedure plus the window
    /// comparator capture checks.
    fn cp_combinational_detects(&self, effect: &AnalogEffect) -> bool {
        let (weak_f, strong_f) = cp_faults_from_effect(effect);
        let mut weak = ChargePump::new(self.p.weak_cp_current, self.p.loop_cap, self.p.supply)
            .with_faults(weak_f);
        let mut strong = ChargePump::new(self.p.strong_cp_current, self.p.loop_cap, self.p.supply)
            .with_faults(strong_f);
        // Scan mode: sources become switches — magnitude faults masked.
        weak.set_scan_mode(true);
        strong.set_scan_mode(true);
        let window = window_from_effect(effect, &self.p);
        let pinned = matches!(effect, AnalogEffect::LoopCapShort);
        let dt = self.p.scan_clock.period();

        let apply = |vc: Volt| if pinned { Volt::ZERO } else { vc };

        // FSM reset exercise: pulse the strong pump toward the window
        // until the window comparator reads Inside (bounded).
        let reset_to_window = |start: Volt, weak: &ChargePump, strong: &ChargePump| -> bool {
            let mut vc = start;
            for _ in 0..20 {
                match window.evaluate(vc) {
                    WindowDecision::Inside => return true,
                    WindowDecision::AboveHigh => {
                        vc = strong.step(vc, false, true, dt);
                    }
                    WindowDecision::BelowLow => {
                        vc = strong.step(vc, true, false, dt);
                    }
                }
                vc = weak.step(vc, false, false, dt); // weak idle leak
                vc = apply(vc);
            }
            false
        };

        // (1) Drive UP via chain A: Vc must cross the upper threshold,
        // then the FSM must reset it into the window (strong DOWN path).
        let mut vc = apply(self.p.vmid);
        for _ in 0..100 {
            vc = weak.step(vc, true, false, dt);
            vc = strong.step(vc, false, false, dt); // strong idle (leak only)
            vc = apply(vc);
        }
        if vc <= self.p.window_high {
            return true;
        }
        if !reset_to_window(vc, &weak, &strong) {
            return true;
        }

        // (2) Drive DN: Vc must cross the lower threshold, then reset
        // again (exercising the strong UP path this time).
        let mut vc = apply(self.p.vmid);
        for _ in 0..100 {
            vc = weak.step(vc, false, true, dt);
            vc = strong.step(vc, false, false, dt);
            vc = apply(vc);
        }
        if vc >= self.p.window_low {
            return true;
        }
        if !reset_to_window(vc, &weak, &strong) {
            return true;
        }

        // (3) Window comparator capture flip-flops at the forced inputs.
        window.evaluate(self.p.vmid) != WindowDecision::Inside
            || window.evaluate(self.p.supply) != WindowDecision::AboveHigh
            || window.evaluate(Volt::ZERO) != WindowDecision::BelowLow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> ScanTest {
        ScanTest::new(&DesignParams::paper())
    }

    #[test]
    fn healthy_link_passes() {
        assert!(!scan().detects(&AnalogEffect::None));
    }

    #[test]
    fn dynamic_mismatch_detected_here_not_at_dc() {
        // The paper's transmission-gate drain-open example.
        let e = AnalogEffect::DynamicImbalance {
            dv: Volt::from_mv(20.0),
        };
        assert!(scan().detects(&e));
    }

    #[test]
    fn probed_nodes_detected_via_chain_a() {
        assert!(scan().detects(&AnalogEffect::DataPathStuck));
    }

    #[test]
    fn dead_pump_paths_detected() {
        for (pump, dir) in [
            (Pump::Weak, PumpDir::Up),
            (Pump::Weak, PumpDir::Down),
            (Pump::Strong, PumpDir::Up),
            (Pump::Strong, PumpDir::Down),
        ] {
            assert!(
                scan().detects(&AnalogEffect::CpDead { pump, dir }),
                "dead {pump:?}/{dir:?} missed"
            );
        }
    }

    #[test]
    fn always_on_pump_detected() {
        for (pump, dir) in [
            (Pump::Weak, PumpDir::Up),
            (Pump::Weak, PumpDir::Down),
            (Pump::Strong, PumpDir::Up),
            (Pump::Strong, PumpDir::Down),
        ] {
            assert!(
                scan().detects(&AnalogEffect::CpAlwaysOn { pump, dir }),
                "always-on {pump:?}/{dir:?} missed"
            );
        }
    }

    #[test]
    fn current_scale_masked_in_scan_mode() {
        // The paper's key masking narrative: rail-tied biases make a
        // DS-shorted current source look like the intended switch.
        for pump in [Pump::Weak, Pump::Strong] {
            for factor in [0.5, 20.0] {
                let e = AnalogEffect::CpCurrentScale {
                    pump,
                    dir: PumpDir::Up,
                    factor,
                };
                assert!(!scan().detects(&e), "{pump:?} x{factor} not masked");
            }
        }
    }

    #[test]
    fn window_stuck_detected_any_polarity() {
        for side in [WindowSide::High, WindowSide::Low] {
            for output in [true, false] {
                let e = AnalogEffect::WindowStuck { side, output };
                assert!(scan().detects(&e), "{side:?} stuck-{output} missed");
            }
        }
    }

    #[test]
    fn window_threshold_shifts_escape_scan() {
        // Parametric shifts pass the gross rail/mid checks.
        for side in [WindowSide::High, WindowSide::Low] {
            for mv in [-100.0, 40.0, 100.0] {
                let e = AnalogEffect::WindowThresholdShift {
                    side,
                    dv: Volt::from_mv(mv),
                };
                assert!(!scan().detects(&e), "{side:?} shift {mv} not escaping");
            }
        }
    }

    #[test]
    fn loop_cap_short_detected() {
        assert!(scan().detects(&AnalogEffect::LoopCapShort));
    }

    #[test]
    fn bist_only_classes_escape_scan() {
        let misses = [
            AnalogEffect::CpBalanceDrift {
                dv: Volt::from_mv(400.0),
            },
            AnalogEffect::ClockPathDead,
            AnalogEffect::ClockDegraded { severity: 0.8 },
            AnalogEffect::VcdlStuck { frac: 0.0 },
            AnalogEffect::VcdlRangeScale { factor: 0.5 },
        ];
        for e in misses {
            assert!(!scan().detects(&e), "{e:?} should be BIST-only");
        }
    }

    #[test]
    fn static_faults_also_seen_while_toggling() {
        // Scan and DC fault sets intersect (the paper notes the tiers are
        // intersecting, not nested).
        assert!(scan().detects(&AnalogEffect::SwingScale { factor: 0.0 }));
        assert!(scan().detects(&AnalogEffect::ArmImbalance {
            dv: Volt::from_mv(25.0)
        }));
        assert!(scan().detects(&AnalogEffect::BiasShift {
            dv: Volt::from_mv(25.0)
        }));
    }
}
