//! # dft — testable design of repeaterless low-swing on-chip interconnect
//!
//! The primary contribution of *"Testable Design of Repeaterless Low Swing
//! On-Chip Interconnect"* (Kadayinti & Sharma, DATE 2016), reproduced in
//! full on the `msim`/`dsim`/`link` substrates:
//!
//! * [`architecture`] — the testable link of Fig. 1: scan chains A (data
//!   path) and B (clock control path), the DFT additions, the gate-level
//!   digital blocks,
//! * [`dc_test`] — the two-vector DC tier (paper: 50.4 % of structural
//!   faults),
//! * [`scan_test`] — the scan tier with the charge-pump-as-combinational
//!   conversion and the 100 MHz dynamic-mismatch check (paper: 74.3 %
//!   cumulative),
//! * [`bist`] — the at-speed BIST with the 3-bit saturating lock detector
//!   and the 150 mV CP-BIST window on the charge-balance node (paper:
//!   94.8 % cumulative),
//! * [`campaign`] — the structural fault campaign aggregating Table I and
//!   the coverage ladder,
//! * [`ablation`] — per-element removal of the DFT observation circuitry,
//! * [`chain_a`] / [`chain_b`] — both scan chains stitched as single
//!   gate-level circuits executing the paper's §II procedures,
//! * [`diagnosis`] — tier-signature fault diagnosis,
//! * [`mismatch`] — Monte-Carlo validation of the 15 mV programmed offset,
//! * [`quality`] — Williams–Brown shipped-defect (DPPM) economics,
//! * [`multilane`] — multi-receiver test-time scheduling,
//! * [`test_program`] — the generated production test program,
//! * [`overhead`] — the Table II added-circuitry accounting,
//! * [`report`] — table rendering for the experiment binaries.
//!
//! # Examples
//!
//! Run the complete fault campaign and read the coverage ladder:
//!
//! ```no_run
//! use dft::campaign::FaultCampaign;
//! use dft::report::percent;
//! use msim::params::DesignParams;
//!
//! let result = FaultCampaign::new(&DesignParams::paper()).run();
//! println!("DC            {}", percent(result.coverage_dc()));
//! println!("DC+scan       {}", percent(result.coverage_dc_scan()));
//! println!("DC+scan+BIST  {}", percent(result.coverage_total()));
//! ```
//!
//! Enumerate the universe without simulating it — the paper's 603
//! structural faults, and the shard plan a resumable run would use:
//!
//! ```
//! use dft::campaign::FaultCampaign;
//! use msim::params::DesignParams;
//!
//! let campaign = FaultCampaign::new(&DesignParams::paper());
//! assert_eq!(campaign.universe().len(), 603);
//! assert!(campaign.shard_count() >= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod architecture;
pub mod bist;
pub mod campaign;
pub mod chain_a;
pub mod chain_b;
pub mod dc_test;
pub mod diagnosis;
pub mod mismatch;
pub mod multilane;
pub mod overhead;
pub mod quality;
pub mod report;
pub mod scan_test;
pub mod test_program;
