//! The two-vector DC test.
//!
//! The cheapest tier of the paper's test flow: hold the interconnect input
//! at logic 1, then at logic 0, and observe
//!
//! * the two **15 mV programmed-offset comparators** at the termination —
//!   a healthy link presents ±30 mV, so any fault eroding, inverting or
//!   grossly shifting the differential flips a comparator;
//! * the **bias-comparison window comparator** — the receiver-derived bias
//!   against the clock-recovery-side generator, flagging common-mode and
//!   bias-generator faults beyond ±15 mV.
//!
//! The paper credits this tier with 50.4 % of the structural faults.
//! Detection here is *simulated*: the resolved behavioral effect perturbs
//! the DC operating point and the comparators decide.
//!
//! # Examples
//!
//! ```
//! use dft::dc_test::DcTest;
//! use msim::effects::AnalogEffect;
//! use msim::params::DesignParams;
//! use msim::units::Volt;
//!
//! let dc = DcTest::new(&DesignParams::paper());
//! assert!(!dc.detects(&AnalogEffect::None));
//! // A dead driver (zero swing) is caught immediately.
//! assert!(dc.detects(&AnalogEffect::SwingScale { factor: 0.0 }));
//! // The paper's transmission-gate drain open is dynamic-only: missed.
//! assert!(!dc.detects(&AnalogEffect::DynamicImbalance { dv: Volt::from_mv(20.0) }));
//! ```

use link::rx::ReceiverFrontEnd;
use msim::effects::AnalogEffect;
use msim::params::DesignParams;
use msim::units::Volt;

/// The two-vector DC test tier.
#[derive(Debug, Clone, PartialEq)]
pub struct DcTest {
    p: DesignParams,
    rx: ReceiverFrontEnd,
}

impl DcTest {
    /// Creates the tier at a design point.
    pub fn new(p: &DesignParams) -> DcTest {
        DcTest {
            rx: ReceiverFrontEnd::new(p.cmp_offset),
            p: p.clone(),
        }
    }

    /// The differential voltage at the termination for a driven bit under
    /// the given fault effect.
    fn dc_differential(&self, effect: &AnalogEffect, driven_one: bool) -> Volt {
        let sign = if driven_one { 1.0 } else { -1.0 };
        let nominal = self.p.dc_test_input() * sign;
        match *effect {
            // One arm pinned to a rail dominates the differential
            // completely, with a fixed polarity regardless of the data.
            AnalogEffect::LineArmStuck { high, .. } => {
                let rail_dev = self.p.supply / 2.0;
                if high {
                    rail_dev
                } else {
                    -rail_dev
                }
            }
            // A static arm imbalance erodes the magnitude seen when the
            // weak arm should dominate (the worst of the two vectors).
            AnalogEffect::ArmImbalance { dv } => nominal - dv * sign,
            AnalogEffect::SwingScale { factor } => nominal * factor,
            AnalogEffect::CouplingDcShift { dv } => nominal + dv,
            // The TX data path frozen: the line holds one state regardless
            // of the applied vector — the other vector reads inverted.
            AnalogEffect::DataPathStuck => -self.p.dc_test_input(),
            _ => nominal,
        }
    }

    /// The receiver-side bias error under the effect.
    fn bias_error(&self, effect: &AnalogEffect) -> Volt {
        match *effect {
            AnalogEffect::CommonModeShift { dv } | AnalogEffect::BiasShift { dv } => dv,
            _ => Volt::ZERO,
        }
    }

    /// Runs the two DC vectors against the effect and returns `true` when
    /// any observation deviates from the fault-free expectation.
    pub fn detects(&self, effect: &AnalogEffect) -> bool {
        // Vector 1: input at logic 1; vector 2: input at logic 0.
        for driven_one in [true, false] {
            let diff = self.dc_differential(effect, driven_one);
            if !self.rx.dc_pass(diff, driven_one) {
                return true;
            }
        }
        // Bias comparison through the window comparator.
        let nominal = self.p.vmid;
        self.rx
            .bias_flagged(nominal + self.bias_error(effect), nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::effects::Arm;

    fn dc() -> DcTest {
        DcTest::new(&DesignParams::paper())
    }

    #[test]
    fn healthy_link_passes() {
        assert!(!dc().detects(&AnalogEffect::None));
    }

    #[test]
    fn arm_imbalance_detected_above_margin_only() {
        // 30 mV healthy against a 15 mV offset: the margin is 15 mV.
        assert!(dc().detects(&AnalogEffect::ArmImbalance {
            dv: Volt::from_mv(20.0)
        }));
        assert!(!dc().detects(&AnalogEffect::ArmImbalance {
            dv: Volt::from_mv(12.0)
        }));
    }

    #[test]
    fn stuck_arm_detected() {
        for high in [true, false] {
            assert!(dc().detects(&AnalogEffect::LineArmStuck {
                arm: Arm::Plus,
                high
            }));
        }
    }

    #[test]
    fn stuck_data_path_detected() {
        // The line holds one state: the opposite vector reads inverted.
        assert!(dc().detects(&AnalogEffect::DataPathStuck));
    }

    #[test]
    fn swing_scale_thresholds() {
        // Dead driver and heavy loss detected; mild gain escapes.
        assert!(dc().detects(&AnalogEffect::SwingScale { factor: 0.0 }));
        assert!(dc().detects(&AnalogEffect::SwingScale { factor: 0.4 }));
        assert!(!dc().detects(&AnalogEffect::SwingScale { factor: 1.3 }));
        assert!(!dc().detects(&AnalogEffect::SwingScale { factor: 0.9 }));
    }

    #[test]
    fn coupling_shift_detected() {
        assert!(dc().detects(&AnalogEffect::CouplingDcShift {
            dv: Volt::from_mv(300.0)
        }));
        assert!(dc().detects(&AnalogEffect::CouplingDcShift {
            dv: Volt::from_mv(-150.0)
        }));
    }

    #[test]
    fn bias_and_common_mode_via_window() {
        assert!(dc().detects(&AnalogEffect::BiasShift {
            dv: Volt::from_mv(25.0)
        }));
        assert!(dc().detects(&AnalogEffect::CommonModeShift {
            dv: Volt::from_mv(50.0)
        }));
        assert!(!dc().detects(&AnalogEffect::BiasShift {
            dv: Volt::from_mv(10.0)
        }));
    }

    #[test]
    fn non_dc_effects_escape() {
        use msim::effects::{Pump, PumpDir, WindowSide};
        let misses = [
            AnalogEffect::DynamicImbalance {
                dv: Volt::from_mv(25.0),
            },
            AnalogEffect::WindowStuck {
                side: WindowSide::High,
                output: true,
            },
            AnalogEffect::CpDead {
                pump: Pump::Weak,
                dir: PumpDir::Up,
            },
            AnalogEffect::CpBalanceDrift {
                dv: Volt::from_mv(400.0),
            },
            AnalogEffect::ClockPathDead,
            AnalogEffect::VcdlStuck { frac: 0.5 },
            AnalogEffect::LoopCapShort,
        ];
        for e in misses {
            assert!(!dc().detects(&e), "{e:?} should not be DC-visible");
        }
    }
}
