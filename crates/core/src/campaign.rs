//! The structural fault campaign.
//!
//! Enumerates the full functional fault universe over the link's netlists,
//! resolves every fault to its behavioral effect, simulates all three test
//! tiers against it and aggregates the statistics the paper reports:
//!
//! * the cumulative coverage ladder — DC ≈ 50 %, DC+scan ≈ 74 %,
//!   DC+scan+BIST ≈ 95 % (Section IV),
//! * coverage by fault type (Table I),
//! * the tier-set relations (the paper: scan and BIST fault sets intersect
//!   but neither contains the other).
//!
//! # Examples
//!
//! ```no_run
//! use dft::campaign::FaultCampaign;
//! use msim::params::DesignParams;
//!
//! let result = FaultCampaign::new(&DesignParams::paper()).run();
//! println!("total coverage {:.1} %", result.coverage_total() * 100.0);
//! ```

use dsim::circuit::Circuit;
use dsim::scan::ScanVector;
use dsim::stuck_at::{enumerate_faults, StuckAtFault};
use link::netlists::functional_netlists;
use msim::effects::{resolve_effect, AnalogEffect};
use msim::fault::{Fault, FaultKind, FaultUniverse};
use msim::params::DesignParams;

use crate::bist::Bist;
use crate::chain_a::ChainA;
use crate::chain_b::ChainB;
use crate::dc_test::DcTest;
use crate::scan_test::ScanTest;

/// Per-fault simulation record.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// The structural fault.
    pub fault: Fault,
    /// Its resolved behavioral effect.
    pub effect: AnalogEffect,
    /// Detected by the DC tier.
    pub dc: bool,
    /// Detected by the scan tier.
    pub scan: bool,
    /// Detected by the BIST tier.
    pub bist: bool,
}

impl FaultRecord {
    /// Detected by any tier.
    pub fn detected(&self) -> bool {
        self.dc || self.scan || self.bist
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    records: Vec<FaultRecord>,
}

impl CampaignResult {
    /// Builds a result from externally produced records (used by the
    /// DFT-element ablations, which re-decide detection per element set).
    pub fn from_records(records: Vec<FaultRecord>) -> CampaignResult {
        CampaignResult { records }
    }

    /// All per-fault records.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Universe size.
    pub fn total(&self) -> usize {
        self.records.len()
    }

    // An empty record set reports 0.0 — an empty campaign has covered
    // nothing. (Contrast with `coverage_of_kind`, which keeps a
    // vacuous-truth 1.0 for a fault kind absent from the universe: a
    // missing Table-I row has no faults left to escape, while a missing
    // campaign has not demonstrated any coverage at all.)
    fn fraction(&self, pred: impl Fn(&FaultRecord) -> bool) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| pred(r)).count() as f64 / self.records.len() as f64
    }

    /// Coverage of the DC tier alone (the paper: 50.4 %).
    pub fn coverage_dc(&self) -> f64 {
        self.fraction(|r| r.dc)
    }

    /// Cumulative DC + scan coverage (the paper: 74.3 %).
    pub fn coverage_dc_scan(&self) -> f64 {
        self.fraction(|r| r.dc || r.scan)
    }

    /// Cumulative DC + scan + BIST coverage (the paper: 94.8 %).
    pub fn coverage_total(&self) -> f64 {
        self.fraction(FaultRecord::detected)
    }

    /// `(total, detected)` for one fault kind — a Table I row.
    pub fn by_kind(&self, kind: FaultKind) -> (usize, usize) {
        let of_kind: Vec<&FaultRecord> = self
            .records
            .iter()
            .filter(|r| r.fault.kind == kind)
            .collect();
        let detected = of_kind.iter().filter(|r| r.detected()).count();
        (of_kind.len(), detected)
    }

    /// Coverage for one fault kind in `[0, 1]`. A kind with no faults in
    /// the universe reads `1.0` (vacuous truth: no member of an absent
    /// Table-I row can escape) — deliberately asymmetric with the
    /// whole-campaign coverages, which read `0.0` on an empty record set.
    pub fn coverage_of_kind(&self, kind: FaultKind) -> f64 {
        let (total, detected) = self.by_kind(kind);
        if total == 0 {
            1.0
        } else {
            detected as f64 / total as f64
        }
    }

    /// Faults no tier detects.
    pub fn undetected(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| !r.detected()).collect()
    }

    /// Faults detected by scan but not BIST.
    pub fn scan_only(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.scan && !r.bist).collect()
    }

    /// Faults detected by BIST but not scan.
    pub fn bist_only(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.bist && !r.scan).collect()
    }

    /// Faults detected by both scan and BIST.
    pub fn scan_and_bist(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.scan && r.bist).collect()
    }
}

/// The campaign driver.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    p: DesignParams,
}

impl FaultCampaign {
    /// Creates a campaign at a design point.
    pub fn new(p: &DesignParams) -> FaultCampaign {
        FaultCampaign { p: p.clone() }
    }

    /// The enumerated functional fault universe.
    pub fn universe(&self) -> FaultUniverse {
        let blocks = functional_netlists();
        FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)))
    }

    /// Runs every fault through all three tiers, fanning the fault list
    /// across all available cores. Records come back in universe order,
    /// byte-identical to [`FaultCampaign::run_sequential`] — the chunked
    /// executor preserves input order and each fault's simulation is
    /// independent of its neighbours.
    pub fn run(&self) -> CampaignResult {
        self.run_on(rt::par::threads())
    }

    /// Runs the campaign on exactly `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_on(&self, threads: usize) -> CampaignResult {
        let _span = rt::obs::span("campaign.fault");
        let dc = DcTest::new(&self.p);
        let scan = ScanTest::new(&self.p);
        let bist = Bist::new(&self.p);
        let universe = self.universe();
        let records = rt::par::parallel_map_with(threads, universe.faults(), |&fault| {
            let effect = resolve_effect(&fault, &self.p);
            let record = FaultRecord {
                fault,
                effect,
                dc: dc.detects(&effect),
                scan: scan.detects(&effect),
                bist: bist.detects(&effect),
            };
            // Per-tier coverage counters; zero-adds still register the
            // keys so the metric set is identical on every run.
            rt::obs::count("campaign.fault.simulated", 1);
            rt::obs::count("campaign.fault.detected.dc", u64::from(record.dc));
            rt::obs::count("campaign.fault.detected.scan", u64::from(record.scan));
            rt::obs::count("campaign.fault.detected.bist", u64::from(record.bist));
            rt::obs::count("campaign.fault.undetected", u64::from(!record.detected()));
            record
        });
        let result = CampaignResult { records };
        rt::obs::log::info(
            "campaign",
            format!(
                "fault campaign done faults={} dc={:.3} dc_scan={:.3} total={:.3}",
                result.total(),
                result.coverage_dc(),
                result.coverage_dc_scan(),
                result.coverage_total()
            ),
        );
        result
    }

    /// Runs the campaign on the calling thread only — the reference
    /// implementation the parallel path is tested against.
    pub fn run_sequential(&self) -> CampaignResult {
        self.run_on(1)
    }
}

/// Per-fault record of the gate-level stuck-at campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalFaultRecord {
    /// Name of the stitched scan chain the fault lives in.
    pub chain: &'static str,
    /// The stuck-at fault.
    pub fault: StuckAtFault,
    /// Detected by the chain's scan pattern set.
    pub detected: bool,
}

/// The gate-level stuck-at campaign over the paper's stitched scan chains,
/// batched through the PPSFP kernel ([`dsim::bitpar`]): per chain, the
/// whole fault universe is fault-simulated 64 patterns per gate-level walk
/// with fault dropping across pattern blocks.
///
/// This is the digital complement of the behavioral [`FaultCampaign`]
/// (which resolves analog effects and never simulates per-pattern);
/// together they produce the paper's "100 % stuck-at coverage on the
/// logically simple blocks" claim as a measured number.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalCampaign {
    chains: Vec<(&'static str, Circuit, Vec<ScanVector>)>,
}

impl DigitalCampaign {
    /// The paper's two stitched chains with their proven-complete pattern
    /// sets: Scan chain A (data path) and Scan chain B (clock control,
    /// four ring phases as in the reproduction's block tests).
    pub fn paper() -> DigitalCampaign {
        use dsim::atpg::random_vectors;
        let a = ChainA::new().circuit().clone();
        let b = ChainB::new(4).circuit().clone();
        let va = random_vectors(&a, 256, 37);
        let vb = random_vectors(&b, 256, 29);
        DigitalCampaign {
            chains: vec![("chain-a", a, va), ("chain-b", b, vb)],
        }
    }

    /// A campaign over explicit `(name, circuit, vectors)` triples.
    pub fn over(chains: Vec<(&'static str, Circuit, Vec<ScanVector>)>) -> DigitalCampaign {
        DigitalCampaign { chains }
    }

    /// Runs the campaign across all available cores. Records come back in
    /// (chain, fault-enumeration) order, byte-identical to
    /// [`DigitalCampaign::run_on`] at any thread count — the packed kernel
    /// parallelizes only over faults with an order-preserving map, and
    /// fault dropping is decided per pattern block, not per thread.
    pub fn run(&self) -> Vec<DigitalFaultRecord> {
        self.run_on(rt::par::threads())
    }

    /// Runs the campaign on exactly `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_on(&self, threads: usize) -> Vec<DigitalFaultRecord> {
        let _span = rt::obs::span("campaign.digital");
        let mut records = Vec::new();
        for (name, circuit, vectors) in &self.chains {
            let _chain_span = rt::obs::span(format!("campaign.digital.{name}"));
            let faults = enumerate_faults(circuit);
            let flags = dsim::bitpar::ppsfp_detect_with(threads, circuit, vectors, &faults);
            let detected = flags.iter().filter(|&&d| d).count();
            rt::obs::count(
                &format!("campaign.digital.{name}.faults"),
                faults.len() as u64,
            );
            rt::obs::count(
                &format!("campaign.digital.{name}.detected"),
                detected as u64,
            );
            rt::obs::log::info(
                "campaign",
                format!(
                    "digital chain={name} faults={} detected={detected}",
                    faults.len()
                ),
            );
            records.extend(faults.into_iter().zip(flags).map(|(fault, detected)| {
                DigitalFaultRecord {
                    chain: name,
                    fault,
                    detected,
                }
            }));
        }
        records
    }

    /// Detected fraction of a record set in `[0, 1]` (`0.0` for an empty
    /// set, matching [`CampaignResult`]'s empty-campaign convention).
    pub fn coverage(records: &[DigitalFaultRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        records.iter().filter(|r| r.detected).count() as f64 / records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::fault::{FaultKind, MosFault};

    // One shared campaign run for the whole module (it is the expensive
    // part of the test suite).
    fn result() -> &'static CampaignResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<CampaignResult> = OnceLock::new();
        RESULT.get_or_init(|| FaultCampaign::new(&DesignParams::paper()).run())
    }

    #[test]
    fn coverage_ladder_matches_paper_shape() {
        let r = result();
        let dc = r.coverage_dc();
        let scan = r.coverage_dc_scan();
        let total = r.coverage_total();
        // The paper: 50.4 % -> 74.3 % -> 94.8 %. Our netlist granularity
        // differs in the decimals; the ladder shape must hold.
        assert!((0.40..=0.60).contains(&dc), "DC coverage {dc}");
        assert!((0.65..=0.85).contains(&scan), "DC+scan coverage {scan}");
        assert!((0.88..=0.99).contains(&total), "total coverage {total}");
        assert!(dc < scan && scan < total);
    }

    #[test]
    fn shorts_are_fully_covered() {
        // Table I: gate-source short, drain-source short and capacitor
        // short rows are 100 %.
        let r = result();
        for kind in [
            FaultKind::Mos(MosFault::GateSourceShort),
            FaultKind::Mos(MosFault::DrainSourceShort),
            FaultKind::CapShort,
        ] {
            let (total, detected) = r.by_kind(kind);
            assert_eq!(detected, total, "{kind} not fully covered");
        }
    }

    #[test]
    fn gate_open_is_the_weakest_row() {
        // Table I: gate open has the lowest coverage (87.8 % in the paper).
        let r = result();
        let gate_open = r.coverage_of_kind(FaultKind::Mos(MosFault::GateOpen));
        for kind in FaultKind::ALL {
            assert!(
                r.coverage_of_kind(kind) >= gate_open - 1e-12,
                "{kind} below gate-open"
            );
        }
        assert!(gate_open < 1.0);
    }

    #[test]
    fn tier_sets_intersect_but_neither_contains_the_other() {
        // The paper: "fault sets covered by the scan test and BIST are
        // intersecting but not subsets of each other".
        let r = result();
        assert!(!r.scan_only().is_empty(), "scan adds nothing over BIST");
        assert!(!r.bist_only().is_empty(), "BIST adds nothing over scan");
        assert!(!r.scan_and_bist().is_empty(), "tiers are disjoint");
    }

    #[test]
    fn undetected_faults_are_parametric_not_gross() {
        // Every escape must be a parametric effect or a structural
        // no-change — never a dead path or stuck node.
        let r = result();
        for rec in r.undetected() {
            match rec.effect {
                AnalogEffect::None
                | AnalogEffect::ArmImbalance { .. }
                | AnalogEffect::DynamicImbalance { .. }
                | AnalogEffect::SwingScale { .. }
                | AnalogEffect::CommonModeShift { .. }
                | AnalogEffect::BiasShift { .. }
                | AnalogEffect::WindowThresholdShift { .. }
                | AnalogEffect::CpCurrentScale { .. }
                | AnalogEffect::CpBalanceDrift { .. }
                | AnalogEffect::ClockDegraded { .. }
                | AnalogEffect::VcdlStuck { .. }
                | AnalogEffect::VcdlRangeScale { .. } => {}
                ref gross => panic!("gross effect escaped: {:?} from {}", gross, rec.fault),
            }
        }
    }

    #[test]
    fn empty_campaign_reports_zero_coverage() {
        // Regression: an empty record set used to read 100 % on all
        // tiers, so an accidentally empty campaign looked perfect.
        let r = CampaignResult::from_records(Vec::new());
        assert_eq!(r.coverage_dc(), 0.0);
        assert_eq!(r.coverage_dc_scan(), 0.0);
        assert_eq!(r.coverage_total(), 0.0);
        // The per-kind vacuous truth is intentionally preserved.
        assert_eq!(r.coverage_of_kind(FaultKind::CapShort), 1.0);
    }

    #[test]
    fn empty_fraction_vs_kind_coverage_asymmetry_is_pinned() {
        // The documented asymmetry, pinned for every fault kind: on an
        // empty record set the whole-campaign fractions read 0.0 (an
        // empty campaign has demonstrated nothing), while every per-kind
        // coverage reads the vacuous 1.0 (no member of an absent Table-I
        // row can escape). Neither side may silently adopt the other's
        // convention.
        let r = CampaignResult::from_records(Vec::new());
        assert_eq!(r.total(), 0);
        assert_eq!(r.coverage_dc(), 0.0);
        assert_eq!(r.coverage_dc_scan(), 0.0);
        assert_eq!(r.coverage_total(), 0.0);
        for kind in FaultKind::ALL {
            assert_eq!(r.by_kind(kind), (0, 0), "{kind}");
            assert_eq!(r.coverage_of_kind(kind), 1.0, "{kind}");
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let c = FaultCampaign::new(&DesignParams::paper());
        let seq = c.run_sequential();
        for threads in [2, 4] {
            assert_eq!(c.run_on(threads), seq, "diverged at {threads} threads");
        }
        assert_eq!(*result(), seq);
    }

    #[test]
    fn digital_campaign_reaches_full_stuck_at_coverage() {
        // The paper: 100 % stuck-at coverage on the logically simple
        // chains — here as a measured number over the PPSFP kernel.
        let records = DigitalCampaign::paper().run();
        assert!(!records.is_empty());
        assert_eq!(DigitalCampaign::coverage(&records), 1.0);
        assert!(records.iter().any(|r| r.chain == "chain-a"));
        assert!(records.iter().any(|r| r.chain == "chain-b"));
        assert_eq!(DigitalCampaign::coverage(&[]), 0.0);
    }

    #[test]
    fn digital_campaign_is_thread_count_invariant() {
        let campaign = DigitalCampaign::paper();
        let seq = campaign.run_on(1);
        for threads in [2, 4, 7] {
            assert_eq!(campaign.run_on(threads), seq, "diverged at {threads}");
        }
    }

    #[test]
    fn universe_matches_netlists() {
        let c = FaultCampaign::new(&DesignParams::paper());
        assert_eq!(c.universe().len(), result().total());
        assert_eq!(result().total(), 99 * 6 + 9);
    }
}
