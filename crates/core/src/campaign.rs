//! The structural fault campaign.
//!
//! Enumerates the full functional fault universe over the link's netlists,
//! resolves every fault to its behavioral effect, simulates all three test
//! tiers against it and aggregates the statistics the paper reports:
//!
//! * the cumulative coverage ladder — DC ≈ 50 %, DC+scan ≈ 74 %,
//!   DC+scan+BIST ≈ 95 % (Section IV),
//! * coverage by fault type (Table I),
//! * the tier-set relations (the paper: scan and BIST fault sets intersect
//!   but neither contains the other).
//!
//! # Examples
//!
//! ```no_run
//! use dft::campaign::FaultCampaign;
//! use msim::params::DesignParams;
//!
//! let result = FaultCampaign::new(&DesignParams::paper()).run();
//! println!("total coverage {:.1} %", result.coverage_total() * 100.0);
//! ```

use std::path::PathBuf;

use dsim::atpg::random_vectors;
use dsim::circuit::Circuit;
use dsim::expand::{ExpandError, TimeExpansion};
use dsim::scan::ScanVector;
use dsim::stuck_at::{enumerate_faults, StuckAtFault};
use dsim::transition::{
    enumerate_transition_faults, launch_capture_response, responses_differ, TransitionFault,
    TwoPatternResponse, TwoPatternTest,
};
use dsim::verilog::VerilogError;
use link::netlists::functional_netlists;
use msim::effects::{resolve_effect, AnalogEffect};
use msim::fault::{Fault, FaultKind, FaultUniverse};
use msim::params::DesignParams;
use rt::exec::{self, RetryPolicy, Sabotage, Shard, ShardFailure, ShardJob};

use crate::bist::Bist;
use crate::chain_a::ChainA;
use crate::chain_b::ChainB;
use crate::dc_test::DcTest;
use crate::scan_test::ScanTest;

/// Execution policy for a resumable campaign run: worker threads, retry
/// budget for panicking shards, optional checkpoint file, and an optional
/// seeded sabotage hook (chaos drills and the conformance suite only).
///
/// The policy never influences *what* a completed campaign computes —
/// records are byte-identical across any thread count, retry budget or
/// kill-and-resume schedule — only *how resiliently* it gets there.
#[derive(Debug)]
pub struct CampaignExec {
    /// Worker threads (must be > 0).
    pub threads: usize,
    /// Retry budget and virtual-time backoff for panicking shards.
    pub retry: RetryPolicy,
    /// Checkpoint file (conventionally under `results/checkpoints/`,
    /// which is gitignored); `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Injected shard panic for testing the recovery machinery.
    pub sabotage: Option<Sabotage>,
}

impl CampaignExec {
    /// A plain run on `threads` workers: no retries, no checkpoint, no
    /// sabotage — the policy behind [`FaultCampaign::run_on`].
    pub fn threads(threads: usize) -> CampaignExec {
        CampaignExec {
            threads,
            retry: RetryPolicy::none(),
            checkpoint: None,
            sabotage: None,
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> CampaignExec {
        self.retry = retry;
        self
    }

    /// Enables checkpointing to `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> CampaignExec {
        self.checkpoint = Some(path.into());
        self
    }

    /// Installs a seeded shard-panic injection.
    pub fn with_sabotage(mut self, sabotage: Sabotage) -> CampaignExec {
        self.sabotage = Some(sabotage);
        self
    }
}

/// Per-fault simulation record.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// The structural fault.
    pub fault: Fault,
    /// Its resolved behavioral effect.
    pub effect: AnalogEffect,
    /// Detected by the DC tier.
    pub dc: bool,
    /// Detected by the scan tier.
    pub scan: bool,
    /// Detected by the BIST tier.
    pub bist: bool,
}

impl FaultRecord {
    /// Detected by any tier.
    pub fn detected(&self) -> bool {
        self.dc || self.scan || self.bist
    }
}

/// Aggregated campaign results.
///
/// A result may be **partial**: shards that exhausted their retry budget
/// under a fault-tolerant [`CampaignExec`] policy are listed in the
/// [`CampaignResult::incomplete`] manifest, and every coverage figure is
/// then computed over the completed shards only.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    records: Vec<FaultRecord>,
    incomplete: Vec<ShardFailure>,
}

impl CampaignResult {
    /// Builds a result from externally produced records (used by the
    /// DFT-element ablations, which re-decide detection per element set).
    pub fn from_records(records: Vec<FaultRecord>) -> CampaignResult {
        CampaignResult {
            records,
            incomplete: Vec::new(),
        }
    }

    /// All per-fault records.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Shards that exhausted their retry budget — empty for a complete
    /// run. A non-empty manifest means every coverage figure is over the
    /// completed shards only.
    pub fn incomplete(&self) -> &[ShardFailure] {
        &self.incomplete
    }

    /// `true` when every planned shard delivered its records.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }

    /// Universe size.
    pub fn total(&self) -> usize {
        self.records.len()
    }

    // An empty record set reports 0.0 — an empty campaign has covered
    // nothing. (Contrast with `coverage_of_kind`, which keeps a
    // vacuous-truth 1.0 for a fault kind absent from the universe: a
    // missing Table-I row has no faults left to escape, while a missing
    // campaign has not demonstrated any coverage at all.)
    fn fraction(&self, pred: impl Fn(&FaultRecord) -> bool) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| pred(r)).count() as f64 / self.records.len() as f64
    }

    /// Coverage of the DC tier alone (the paper: 50.4 %).
    pub fn coverage_dc(&self) -> f64 {
        self.fraction(|r| r.dc)
    }

    /// Cumulative DC + scan coverage (the paper: 74.3 %).
    pub fn coverage_dc_scan(&self) -> f64 {
        self.fraction(|r| r.dc || r.scan)
    }

    /// Cumulative DC + scan + BIST coverage (the paper: 94.8 %).
    pub fn coverage_total(&self) -> f64 {
        self.fraction(FaultRecord::detected)
    }

    /// `(total, detected)` for one fault kind — a Table I row.
    pub fn by_kind(&self, kind: FaultKind) -> (usize, usize) {
        let of_kind: Vec<&FaultRecord> = self
            .records
            .iter()
            .filter(|r| r.fault.kind == kind)
            .collect();
        let detected = of_kind.iter().filter(|r| r.detected()).count();
        (of_kind.len(), detected)
    }

    /// Coverage for one fault kind in `[0, 1]`. A kind with no faults in
    /// the universe reads `1.0` (vacuous truth: no member of an absent
    /// Table-I row can escape) — deliberately asymmetric with the
    /// whole-campaign coverages, which read `0.0` on an empty record set.
    pub fn coverage_of_kind(&self, kind: FaultKind) -> f64 {
        let (total, detected) = self.by_kind(kind);
        if total == 0 {
            1.0
        } else {
            detected as f64 / total as f64
        }
    }

    /// Faults no tier detects.
    pub fn undetected(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| !r.detected()).collect()
    }

    /// Faults detected by scan but not BIST.
    pub fn scan_only(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.scan && !r.bist).collect()
    }

    /// Faults detected by BIST but not scan.
    pub fn bist_only(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.bist && !r.scan).collect()
    }

    /// Faults detected by both scan and BIST.
    pub fn scan_and_bist(&self) -> Vec<&FaultRecord> {
        self.records.iter().filter(|r| r.scan && r.bist).collect()
    }
}

/// Fault-universe shard size for the resumable executor: small enough
/// that a kill loses under a ninth of the paper universe, large enough
/// that checkpoint frames stay negligible next to simulation time.
const FAULT_SHARD_SIZE: usize = 64;

/// Base seed for the behavioral campaign's shard substreams.
const FAULT_SHARD_SEED: u64 = 0xFA01;

/// The behavioral campaign's shard job: one contiguous run of universe
/// indices through all three test tiers. Checkpoint payloads are one
/// flags byte per record (`dc | scan<<1 | bist<<2`) — the fault and its
/// resolved effect are reconstructed from the universe index and the
/// design point, so resumed records are byte-identical to recomputed
/// ones.
struct FaultJob<'a> {
    faults: &'a [Fault],
    p: &'a DesignParams,
    dc: DcTest,
    scan: ScanTest,
    bist: Bist,
    sabotage: Option<&'a Sabotage>,
}

impl ShardJob for FaultJob<'_> {
    type Record = FaultRecord;

    fn run(&self, shard: &Shard) -> Vec<FaultRecord> {
        if let Some(s) = self.sabotage {
            s.trip(shard.index);
        }
        shard
            .range()
            .map(|i| {
                let fault = self.faults[i];
                let effect = resolve_effect(&fault, self.p);
                let record = FaultRecord {
                    fault,
                    effect,
                    dc: self.dc.detects(&effect),
                    scan: self.scan.detects(&effect),
                    bist: self.bist.detects(&effect),
                };
                // Per-tier coverage counters; zero-adds still register the
                // keys so the metric set is identical on every run.
                rt::obs::count("campaign.fault.simulated", 1);
                rt::obs::count("campaign.fault.detected.dc", u64::from(record.dc));
                rt::obs::count("campaign.fault.detected.scan", u64::from(record.scan));
                rt::obs::count("campaign.fault.detected.bist", u64::from(record.bist));
                rt::obs::count("campaign.fault.undetected", u64::from(!record.detected()));
                record
            })
            .collect()
    }

    fn encode(&self, _shard: &Shard, records: &[FaultRecord], out: &mut Vec<u8>) {
        for r in records {
            out.push(u8::from(r.dc) | u8::from(r.scan) << 1 | u8::from(r.bist) << 2);
        }
    }

    fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<FaultRecord>> {
        if payload.len() != shard.len || payload.iter().any(|&b| b > 0b111) {
            return None;
        }
        Some(
            shard
                .range()
                .zip(payload)
                .map(|(i, &b)| {
                    let fault = self.faults[i];
                    FaultRecord {
                        fault,
                        effect: resolve_effect(&fault, self.p),
                        dc: b & 1 != 0,
                        scan: b & 2 != 0,
                        bist: b & 4 != 0,
                    }
                })
                .collect(),
        )
    }
}

/// The campaign driver.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    p: DesignParams,
}

impl FaultCampaign {
    /// Creates a campaign at a design point.
    pub fn new(p: &DesignParams) -> FaultCampaign {
        FaultCampaign { p: p.clone() }
    }

    /// The enumerated functional fault universe.
    pub fn universe(&self) -> FaultUniverse {
        let blocks = functional_netlists();
        FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)))
    }

    /// Runs every fault through all three tiers, fanning the fault list
    /// across all available cores. Records come back in universe order,
    /// byte-identical to [`FaultCampaign::run_sequential`] — the chunked
    /// executor preserves input order and each fault's simulation is
    /// independent of its neighbours.
    pub fn run(&self) -> CampaignResult {
        self.run_on(rt::par::threads())
    }

    /// Runs the campaign on exactly `threads` worker threads — shorthand
    /// for [`FaultCampaign::run_with`] under a plain
    /// [`CampaignExec::threads`] policy (no retries, no checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_on(&self, threads: usize) -> CampaignResult {
        self.run_with(&CampaignExec::threads(threads))
    }

    /// Number of shards a resumable run of this campaign plans — the
    /// domain for a seeded [`Sabotage`] victim draw.
    pub fn shard_count(&self) -> usize {
        self.universe().len().div_ceil(FAULT_SHARD_SIZE)
    }

    /// The checkpoint fingerprint of this campaign: a resumed run must
    /// prove it is the same universe, shard plan and design point before
    /// any frame is trusted.
    fn fingerprint(&self, universe_len: usize) -> u64 {
        exec::fingerprint(&[
            u64::from(exec::CHECKPOINT_VERSION),
            universe_len as u64,
            FAULT_SHARD_SIZE as u64,
            FAULT_SHARD_SEED,
            u64::from(exec::crc32(format!("{:?}", self.p).as_bytes())),
        ])
    }

    /// Runs the campaign under an explicit execution policy: the fault
    /// universe is cut into deterministic shards, each shard runs
    /// panic-isolated (retried per `policy.retry`, checkpointed when
    /// `policy.checkpoint` is set), and records come back in universe
    /// order — byte-identical across thread counts, retries and
    /// kill-and-resume schedules. Shards that exhaust the retry budget
    /// degrade the result to a partial one carrying the
    /// [`CampaignResult::incomplete`] manifest instead of aborting.
    ///
    /// # Panics
    ///
    /// Panics if `policy.threads == 0` or the checkpoint file cannot be
    /// opened.
    pub fn run_with(&self, policy: &CampaignExec) -> CampaignResult {
        let _span = rt::obs::span("campaign.fault");
        let universe = self.universe();
        let job = FaultJob {
            faults: universe.faults(),
            p: &self.p,
            dc: DcTest::new(&self.p),
            scan: ScanTest::new(&self.p),
            bist: Bist::new(&self.p),
            sabotage: policy.sabotage.as_ref(),
        };
        let shards = exec::plan(universe.len(), FAULT_SHARD_SIZE, FAULT_SHARD_SEED);
        let mut ck = policy.checkpoint.as_ref().map(|path| {
            exec::Checkpoint::open(path, self.fingerprint(universe.len()))
                .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()))
        });
        let report = exec::run_shards(policy.threads, &policy.retry, ck.as_mut(), &shards, &job);
        let result = CampaignResult {
            records: report.records,
            incomplete: report.incomplete,
        };
        rt::obs::log::info(
            "campaign",
            format!(
                "fault campaign done faults={} dc={:.3} dc_scan={:.3} total={:.3} failed_shards={}",
                result.total(),
                result.coverage_dc(),
                result.coverage_dc_scan(),
                result.coverage_total(),
                result.incomplete.len(),
            ),
        );
        result
    }

    /// Runs the campaign on the calling thread only — the reference
    /// implementation the parallel path is tested against.
    pub fn run_sequential(&self) -> CampaignResult {
        self.run_on(1)
    }
}

/// Stuck-at shard size for the digital campaign. Wider than the
/// behavioral campaign's 64: the PPSFP kernel now evaluates up to 512
/// patterns per pass, so fatter shards amortize its per-shard golden
/// simulation without hurting load balance on the paper's chain sizes.
/// Chains are segment boundaries the planner never cuts across, and shard
/// stitching is result-invariant, so this is purely a scheduling knob
/// (it does feed the campaign fingerprint, invalidating old checkpoints).
const DIGITAL_SHARD_SIZE: usize = 128;

/// Base seed for the digital campaign's shard substreams.
const DIGITAL_SHARD_SEED: u64 = 0xD101;

/// Per-fault record of the gate-level stuck-at campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalFaultRecord {
    /// Name of the stitched scan chain the fault lives in.
    pub chain: &'static str,
    /// The stuck-at fault.
    pub fault: StuckAtFault,
    /// Detected by the chain's scan pattern set.
    pub detected: bool,
}

/// Outcome of a resumable digital campaign run: records over completed
/// shards plus the failed-shard manifest (empty for a complete run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalCampaignResult {
    /// Per-fault records over completed shards, in (chain,
    /// fault-enumeration) order.
    pub records: Vec<DigitalFaultRecord>,
    /// Shards that exhausted their retry budget.
    pub incomplete: Vec<ShardFailure>,
}

impl DigitalCampaignResult {
    /// `true` when every planned shard delivered its records.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }
}

/// The digital campaign's shard job: one contiguous fault range inside
/// exactly one chain ([`exec::plan_segmented`] never cuts across chain
/// boundaries), simulated through the shard-granular PPSFP entry point.
/// Checkpoint payloads are one detected byte per record; the fault
/// itself is reconstructed from the chain's enumeration order.
struct DigitalJob<'a> {
    chains: &'a [(&'static str, Circuit, Vec<ScanVector>)],
    faults: &'a [Vec<StuckAtFault>],
    starts: &'a [usize],
    sabotage: Option<&'a Sabotage>,
}

impl DigitalJob<'_> {
    /// The chain a plan-global shard start offset falls into.
    fn chain_of(&self, start: usize) -> usize {
        self.starts.partition_point(|&s| s <= start) - 1
    }
}

impl ShardJob for DigitalJob<'_> {
    type Record = DigitalFaultRecord;

    fn run(&self, shard: &Shard) -> Vec<DigitalFaultRecord> {
        if let Some(s) = self.sabotage {
            s.trip(shard.index);
        }
        let chain = self.chain_of(shard.start);
        let (name, circuit, vectors) = &self.chains[chain];
        let local = shard.start - self.starts[chain];
        let flags = dsim::bitpar::ppsfp_detect_shard(
            circuit,
            vectors,
            &self.faults[chain],
            local..local + shard.len,
        );
        // Per-shard increments summing to the per-chain totals the
        // metrics snapshot tracks — functions of the (thread-invariant)
        // shard plan only.
        rt::obs::count(&format!("campaign.digital.{name}.faults"), shard.len as u64);
        rt::obs::count(
            &format!("campaign.digital.{name}.detected"),
            flags.iter().filter(|&&d| d).count() as u64,
        );
        self.faults[chain][local..local + shard.len]
            .iter()
            .zip(flags)
            .map(|(&fault, detected)| DigitalFaultRecord {
                chain: name,
                fault,
                detected,
            })
            .collect()
    }

    fn encode(&self, _shard: &Shard, records: &[DigitalFaultRecord], out: &mut Vec<u8>) {
        for r in records {
            out.push(u8::from(r.detected));
        }
    }

    fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<DigitalFaultRecord>> {
        if payload.len() != shard.len || payload.iter().any(|&b| b > 1) {
            return None;
        }
        let chain = self.chain_of(shard.start);
        let (name, _, _) = &self.chains[chain];
        let local = shard.start - self.starts[chain];
        Some(
            self.faults[chain][local..local + shard.len]
                .iter()
                .zip(payload)
                .map(|(&fault, &b)| DigitalFaultRecord {
                    chain: name,
                    fault,
                    detected: b == 1,
                })
                .collect(),
        )
    }
}

/// The gate-level stuck-at campaign over the paper's stitched scan chains,
/// batched through the PPSFP kernel ([`dsim::bitpar`]): per chain, the
/// whole fault universe is fault-simulated 64 patterns per gate-level walk
/// with fault dropping across pattern blocks.
///
/// This is the digital complement of the behavioral [`FaultCampaign`]
/// (which resolves analog effects and never simulates per-pattern);
/// together they produce the paper's "100 % stuck-at coverage on the
/// logically simple blocks" claim as a measured number.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalCampaign {
    chains: Vec<(&'static str, Circuit, Vec<ScanVector>)>,
}

impl DigitalCampaign {
    /// The paper's two stitched chains with their proven-complete pattern
    /// sets: Scan chain A (data path) and Scan chain B (clock control,
    /// four ring phases as in the reproduction's block tests).
    pub fn paper() -> DigitalCampaign {
        let a = ChainA::new().circuit().clone();
        let b = ChainB::new(4).circuit().clone();
        let va = random_vectors(&a, 256, 37);
        let vb = random_vectors(&b, 256, 29);
        DigitalCampaign {
            chains: vec![("chain-a", a, va), ("chain-b", b, vb)],
        }
    }

    /// A campaign over explicit `(name, circuit, vectors)` triples.
    pub fn over(chains: Vec<(&'static str, Circuit, Vec<ScanVector>)>) -> DigitalCampaign {
        DigitalCampaign { chains }
    }

    /// Runs the campaign across all available cores. Records come back in
    /// (chain, fault-enumeration) order, byte-identical to
    /// [`DigitalCampaign::run_on`] at any thread count — the packed kernel
    /// parallelizes only over faults with an order-preserving map, and
    /// fault dropping is decided per pattern block, not per thread.
    pub fn run(&self) -> Vec<DigitalFaultRecord> {
        self.run_on(rt::par::threads())
    }

    /// Runs the campaign on exactly `threads` worker threads — shorthand
    /// for [`DigitalCampaign::run_with`] under a plain policy, unwrapped
    /// to the bare record list.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, or if any shard fails (without a retry
    /// budget a worker panic has nowhere to degrade to — the bare record
    /// list cannot carry a manifest, so the failure stays loud).
    pub fn run_on(&self, threads: usize) -> Vec<DigitalFaultRecord> {
        let result = self.run_with(&CampaignExec::threads(threads));
        assert!(
            result.incomplete.is_empty(),
            "digital campaign lost shards: {:?}",
            result.incomplete
        );
        result.records
    }

    /// The checkpoint fingerprint of this campaign over the per-chain
    /// fault universes and pattern sets.
    fn fingerprint(&self, faults: &[Vec<StuckAtFault>]) -> u64 {
        let mut parts = vec![
            u64::from(exec::CHECKPOINT_VERSION),
            DIGITAL_SHARD_SIZE as u64,
            DIGITAL_SHARD_SEED,
        ];
        for ((name, _, vectors), chain_faults) in self.chains.iter().zip(faults) {
            parts.push(u64::from(exec::crc32(name.as_bytes())));
            parts.push(chain_faults.len() as u64);
            parts.push(vectors.len() as u64);
        }
        exec::fingerprint(&parts)
    }

    /// Runs the campaign under an explicit execution policy. Chains are
    /// planner segments: every shard is a contiguous fault range inside
    /// exactly one chain, simulated through the shard-granular PPSFP
    /// entry point ([`dsim::bitpar::ppsfp_detect_shard`]). Records come
    /// back in (chain, fault-enumeration) order, byte-identical across
    /// thread counts, retries and kill-and-resume schedules; shards that
    /// exhaust the retry budget end up in the result's `incomplete`
    /// manifest.
    ///
    /// # Panics
    ///
    /// Panics if `policy.threads == 0` or the checkpoint file cannot be
    /// opened.
    pub fn run_with(&self, policy: &CampaignExec) -> DigitalCampaignResult {
        let _span = rt::obs::span("campaign.digital");
        let faults: Vec<Vec<StuckAtFault>> = self
            .chains
            .iter()
            .map(|(_, circuit, _)| enumerate_faults(circuit))
            .collect();
        let segments: Vec<usize> = faults.iter().map(Vec::len).collect();
        let starts: Vec<usize> = segments
            .iter()
            .scan(0, |acc, &n| {
                let s = *acc;
                *acc += n;
                Some(s)
            })
            .collect();
        let job = DigitalJob {
            chains: &self.chains,
            faults: &faults,
            starts: &starts,
            sabotage: policy.sabotage.as_ref(),
        };
        let shards = exec::plan_segmented(&segments, DIGITAL_SHARD_SIZE, DIGITAL_SHARD_SEED);
        let mut ck = policy.checkpoint.as_ref().map(|path| {
            exec::Checkpoint::open(path, self.fingerprint(&faults))
                .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()))
        });
        let report = exec::run_shards(policy.threads, &policy.retry, ck.as_mut(), &shards, &job);
        for (name, _, _) in &self.chains {
            let (total, detected) = report
                .records
                .iter()
                .filter(|r| r.chain == *name)
                .fold((0u64, 0u64), |(t, d), r| (t + 1, d + u64::from(r.detected)));
            rt::obs::log::info(
                "campaign",
                format!("digital chain={name} faults={total} detected={detected}"),
            );
        }
        DigitalCampaignResult {
            records: report.records,
            incomplete: report.incomplete,
        }
    }

    /// Detected fraction of a record set in `[0, 1]` (`0.0` for an empty
    /// set, matching [`CampaignResult`]'s empty-campaign convention).
    pub fn coverage(records: &[DigitalFaultRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        records.iter().filter(|r| r.detected).count() as f64 / records.len() as f64
    }
}

/// Shard size for the netlist campaign. Matches the digital campaign's
/// width: stuck-at shards run through the same PPSFP kernel, and the
/// transition shards' per-fault replay is cheap enough that load balance
/// does not suffer at this granularity.
const NETLIST_SHARD_SIZE: usize = 128;

/// Base seed for the netlist campaign's shard substreams.
const NETLIST_SHARD_SEED: u64 = 0x2E76; // ".v"

/// Seed for the netlist campaign's random stuck-at pattern set.
const NETLIST_VECTOR_SEED: u64 = 41;

/// Random stuck-at patterns per netlist campaign.
const NETLIST_VECTOR_COUNT: usize = 256;

/// Why a [`NetlistCampaign`] could not be built from its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// The Verilog source failed to parse or lower.
    Verilog(VerilogError),
    /// The lowered circuit cannot be time-expanded (combinational
    /// feedback — the broad-side model needs an acyclic netlist).
    Expand(ExpandError),
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::Verilog(e) => write!(f, "{e}"),
            NetlistError::Expand(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<VerilogError> for NetlistError {
    fn from(e: VerilogError) -> NetlistError {
        NetlistError::Verilog(e)
    }
}

impl From<ExpandError> for NetlistError {
    fn from(e: ExpandError) -> NetlistError {
        NetlistError::Expand(e)
    }
}

/// Per-fault record of a netlist campaign — one stuck-at or one
/// transition fault with its detection verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistFaultRecord {
    /// A stuck-at fault simulated against the random pattern set through
    /// the PPSFP kernel.
    StuckAt {
        /// The stuck-at fault.
        fault: StuckAtFault,
        /// Detected by the random pattern set.
        detected: bool,
    },
    /// A transition fault replayed launch-on-capture against the
    /// time-expansion ATPG's two-pattern tests.
    Transition {
        /// The transition fault.
        fault: TransitionFault,
        /// Detected by the generated two-pattern test set.
        detected: bool,
    },
}

impl NetlistFaultRecord {
    /// The detection verdict, whichever fault model the record carries.
    pub fn detected(&self) -> bool {
        match self {
            NetlistFaultRecord::StuckAt { detected, .. }
            | NetlistFaultRecord::Transition { detected, .. } => *detected,
        }
    }
}

/// Outcome of a resumable netlist campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistCampaignResult {
    /// Per-fault records over completed shards: the full stuck-at
    /// universe first (enumeration order), then the full transition
    /// universe (enumeration order).
    pub records: Vec<NetlistFaultRecord>,
    /// Transition faults the ATPG proved untestable (PODEM exhausted its
    /// backtrack budget on the gadget model) — informational; they still
    /// appear in `records`, almost always undetected.
    pub untestable: Vec<TransitionFault>,
    /// Shards that exhausted their retry budget.
    pub incomplete: Vec<ShardFailure>,
}

impl NetlistCampaignResult {
    /// `true` when every planned shard delivered its records.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }

    /// `(total, detected)` over the stuck-at universe.
    pub fn stuck_at(&self) -> (usize, usize) {
        self.count(|r| matches!(r, NetlistFaultRecord::StuckAt { .. }))
    }

    /// `(total, detected)` over the transition universe.
    pub fn transition(&self) -> (usize, usize) {
        self.count(|r| matches!(r, NetlistFaultRecord::Transition { .. }))
    }

    /// Stuck-at coverage in `[0, 1]` (`0.0` over an empty universe,
    /// matching [`CampaignResult`]'s empty-campaign convention).
    pub fn stuck_at_coverage(&self) -> f64 {
        Self::ratio(self.stuck_at())
    }

    /// Transition coverage in `[0, 1]` over the *whole* enumerated
    /// universe — untestable faults count against it, exactly as a tester
    /// would score the pattern set (`0.0` over an empty universe).
    pub fn transition_coverage(&self) -> f64 {
        Self::ratio(self.transition())
    }

    fn count(&self, pred: impl Fn(&NetlistFaultRecord) -> bool) -> (usize, usize) {
        self.records
            .iter()
            .filter(|r| pred(r))
            .fold((0, 0), |(total, detected), r| {
                (total + 1, detected + usize::from(r.detected()))
            })
    }

    fn ratio((total, detected): (usize, usize)) -> f64 {
        if total == 0 {
            0.0
        } else {
            detected as f64 / total as f64
        }
    }
}

/// Which fault universes a [`NetlistCampaign`] enumerates, plans and
/// fingerprints. The serving layer maps its `stuck_at` / `transition` /
/// `netlist` job kinds onto these selections; [`NetlistCampaign::over`]
/// keeps the historical default of [`UniverseSel::Both`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniverseSel {
    /// The stuck-at universe only: PPSFP against the random pattern set.
    /// No ATPG runs, so even a circuit that cannot be time-expanded
    /// (combinational feedback) is accepted.
    StuckAt,
    /// The transition universe only: time-expansion ATPG plus
    /// launch-on-capture replay.
    Transition,
    /// Both universes as a two-segment plan — the default.
    Both,
}

impl UniverseSel {
    /// `true` when the selection includes the stuck-at universe.
    pub fn stuck(self) -> bool {
        matches!(self, UniverseSel::StuckAt | UniverseSel::Both)
    }

    /// `true` when the selection includes the transition universe.
    pub fn transition(self) -> bool {
        matches!(self, UniverseSel::Transition | UniverseSel::Both)
    }
}

/// A netlist campaign prepared for shard-granular execution: owns the
/// enumerated fault universes, the random pattern set, the generated
/// tests and their fault-free goldens, and exposes the deterministic
/// plan, the per-shard runner and the checkpoint payload codec.
///
/// [`NetlistCampaign::run_with`] drives one of these through the
/// in-process [`rt::exec`] executor; the `serve` crate's job scheduler
/// drives the same object shard by shard from its shared worker pool,
/// which is what makes a served campaign byte-identical to a local run.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedCampaign {
    name: String,
    circuit: Circuit,
    vectors: Vec<ScanVector>,
    tests: Vec<TwoPatternTest>,
    untestable: Vec<TransitionFault>,
    stuck: Vec<StuckAtFault>,
    transition: Vec<TransitionFault>,
    goldens: Vec<TwoPatternResponse>,
}

impl PreparedCampaign {
    /// The campaign's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(stuck-at, transition)` universe sizes (zero for a universe the
    /// selection excluded).
    pub fn universe_sizes(&self) -> (usize, usize) {
        (self.stuck.len(), self.transition.len())
    }

    /// Total planned fault records across both universes.
    pub fn total(&self) -> usize {
        self.stuck.len() + self.transition.len()
    }

    /// The deterministic shard plan: the stuck-at universe then the
    /// transition universe as back-to-back segments (an excluded
    /// universe is a zero-length segment, which is inert), so no shard
    /// ever mixes fault models.
    pub fn shards(&self) -> Vec<Shard> {
        let segments = [self.stuck.len(), self.transition.len()];
        exec::plan_segmented(&segments, NETLIST_SHARD_SIZE, NETLIST_SHARD_SEED)
    }

    /// The checkpoint/cache fingerprint over the circuit name, both
    /// universe sizes, the pattern and test set sizes and the shard
    /// plan — the identity a resumed run (or a content-addressed result
    /// cache) must prove before trusting prior bytes.
    pub fn fingerprint(&self) -> u64 {
        exec::fingerprint(&[
            u64::from(exec::CHECKPOINT_VERSION),
            NETLIST_SHARD_SIZE as u64,
            NETLIST_SHARD_SEED,
            u64::from(exec::crc32(self.name.as_bytes())),
            self.stuck.len() as u64,
            self.transition.len() as u64,
            self.vectors.len() as u64,
            self.tests.len() as u64,
        ])
    }

    /// Record reconstruction for one plan-global index — shared by
    /// [`PreparedCampaign::run_shard`] and the payload decoder.
    fn record_at(&self, i: usize, detected: bool) -> NetlistFaultRecord {
        if i < self.stuck.len() {
            NetlistFaultRecord::StuckAt {
                fault: self.stuck[i],
                detected,
            }
        } else {
            NetlistFaultRecord::Transition {
                fault: self.transition[i - self.stuck.len()],
                detected,
            }
        }
    }

    /// Runs one planned shard on the calling thread: PPSFP for a
    /// stuck-at shard, launch-on-capture replay against the precomputed
    /// goldens for a transition shard. A pure function of the shard and
    /// the prepared state — any scheduler may run shards in any order on
    /// any thread and concatenate results in plan order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not from this campaign's plan.
    pub fn run_shard(&self, shard: &Shard) -> Vec<NetlistFaultRecord> {
        let model = if shard.start < self.stuck.len() {
            "stuck_at"
        } else {
            "transition"
        };
        let _span = rt::obs::span(format!("shard.{model}.{}", shard.index));
        let flags: Vec<bool> = if shard.start < self.stuck.len() {
            // Stuck-at segment (plan_segmented never cuts across the
            // segment boundary, so the whole shard is one fault model).
            dsim::bitpar::ppsfp_detect_shard(
                &self.circuit,
                &self.vectors,
                &self.stuck,
                shard.start..shard.start + shard.len,
            )
        } else {
            let local = shard.start - self.stuck.len();
            self.transition[local..local + shard.len]
                .iter()
                .map(|&fault| {
                    self.tests.iter().zip(&self.goldens).any(|(test, golden)| {
                        let faulty = launch_capture_response(&self.circuit, test, Some(fault));
                        responses_differ(golden, &faulty)
                    })
                })
                .collect()
        };
        // Shard-plan functions only, so the metric totals are
        // thread-count invariant.
        rt::obs::count(
            &format!("campaign.netlist.{}.{model}.faults", self.name),
            shard.len as u64,
        );
        rt::obs::count(
            &format!("campaign.netlist.{}.{model}.detected", self.name),
            flags.iter().filter(|&&d| d).count() as u64,
        );
        shard
            .range()
            .zip(flags)
            .map(|(i, detected)| self.record_at(i, detected))
            .collect()
    }

    /// Encodes a shard's records as checkpoint payload bytes (one
    /// detected byte per record).
    pub fn encode_shard(&self, records: &[NetlistFaultRecord], out: &mut Vec<u8>) {
        for r in records {
            out.push(u8::from(r.detected()));
        }
    }

    /// Decodes a checkpoint payload back into records, or `None` when
    /// the payload does not match the shard (wrong length, non-flag
    /// bytes) — the shard is then recomputed.
    pub fn decode_shard(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<NetlistFaultRecord>> {
        if payload.len() != shard.len || payload.iter().any(|&b| b > 1) {
            return None;
        }
        Some(
            shard
                .range()
                .zip(payload)
                .map(|(i, &b)| self.record_at(i, b == 1))
                .collect(),
        )
    }

    /// Assembles a [`NetlistCampaignResult`] from records concatenated
    /// in plan order plus a failed-shard manifest.
    pub fn result(
        &self,
        records: Vec<NetlistFaultRecord>,
        incomplete: Vec<ShardFailure>,
    ) -> NetlistCampaignResult {
        NetlistCampaignResult {
            records,
            untestable: self.untestable.clone(),
            incomplete,
        }
    }
}

/// The netlist campaign's in-process shard job: a thin [`ShardJob`]
/// adapter over [`PreparedCampaign`] adding the seeded sabotage hook.
struct NetlistJob<'a> {
    prep: &'a PreparedCampaign,
    sabotage: Option<&'a Sabotage>,
}

impl ShardJob for NetlistJob<'_> {
    type Record = NetlistFaultRecord;

    fn run(&self, shard: &Shard) -> Vec<NetlistFaultRecord> {
        if let Some(s) = self.sabotage {
            s.trip(shard.index);
        }
        self.prep.run_shard(shard)
    }

    fn encode(&self, _shard: &Shard, records: &[NetlistFaultRecord], out: &mut Vec<u8>) {
        self.prep.encode_shard(records, out);
    }

    fn decode(&self, shard: &Shard, payload: &[u8]) -> Option<Vec<NetlistFaultRecord>> {
        self.prep.decode_shard(shard, payload)
    }
}

/// A full digital test campaign over one parsed (or hand-built) netlist:
/// the stuck-at universe fault-simulated against a seeded random pattern
/// set through the PPSFP kernel, plus the transition universe targeted by
/// the time-expansion ATPG ([`dsim::expand::TimeExpansion`]) and scored
/// by launch-on-capture replay on the original sequential circuit.
///
/// This is the scenario the Verilog frontend unlocks: point the pipeline
/// at an arbitrary `.v` netlist ([`NetlistCampaign::from_verilog`]) and
/// get the paper's coverage tables for it, resumable and thread-count
/// invariant like every other campaign in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistCampaign {
    name: String,
    circuit: Circuit,
    sel: UniverseSel,
    vectors: Vec<ScanVector>,
    tests: Vec<TwoPatternTest>,
    untestable: Vec<TransitionFault>,
}

impl NetlistCampaign {
    /// Builds a campaign from structural Verilog source: parse, lower,
    /// time-expand, and run PODEM over the expanded model for every
    /// transition fault. The campaign is named after the module.
    pub fn from_verilog(src: &str) -> Result<NetlistCampaign, NetlistError> {
        let circuit = dsim::verilog::compile(src)?;
        NetlistCampaign::over(circuit.name().to_string(), circuit)
    }

    /// Builds a campaign over an already-constructed circuit covering
    /// both fault universes with the default pattern budget. Fails only
    /// when the circuit cannot be time-expanded (combinational feedback).
    ///
    /// Construction is where the ATPG runs: the stuck-at pattern set is
    /// drawn (256 seeded random vectors) and PODEM
    /// generates the launch-on-capture test set, so [`NetlistCampaign::run`]
    /// itself is pure fault simulation.
    pub fn over(
        name: impl Into<String>,
        circuit: Circuit,
    ) -> Result<NetlistCampaign, NetlistError> {
        NetlistCampaign::configured(
            name,
            circuit,
            UniverseSel::Both,
            NETLIST_VECTOR_COUNT,
            NETLIST_VECTOR_SEED,
        )
    }

    /// Builds a campaign with an explicit universe selection and
    /// stuck-at pattern budget — the entry point the `serve` crate's job
    /// kinds map onto. The time-expansion ATPG only runs when `sel`
    /// includes the transition universe, so a stuck-at-only campaign is
    /// cheap to construct and accepts circuits with combinational
    /// feedback that [`NetlistCampaign::over`] would reject.
    pub fn configured(
        name: impl Into<String>,
        circuit: Circuit,
        sel: UniverseSel,
        vector_count: usize,
        vector_seed: u64,
    ) -> Result<NetlistCampaign, NetlistError> {
        let (tests, untestable) = if sel.transition() {
            TimeExpansion::new(&circuit)?.generate_all()
        } else {
            (Vec::new(), Vec::new())
        };
        let vectors = if sel.stuck() {
            random_vectors(&circuit, vector_count, vector_seed)
        } else {
            Vec::new()
        };
        Ok(NetlistCampaign {
            name: name.into(),
            circuit,
            sel,
            vectors,
            tests,
            untestable,
        })
    }

    /// The campaign's display name (the Verilog module name when built
    /// through [`NetlistCampaign::from_verilog`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The generated launch-on-capture two-pattern test set.
    pub fn tests(&self) -> &[TwoPatternTest] {
        &self.tests
    }

    /// Transition faults PODEM proved out of reach on the expanded model.
    pub fn untestable(&self) -> &[TransitionFault] {
        &self.untestable
    }

    /// Runs the campaign across all available cores. Records come back
    /// in (stuck-at universe, transition universe) enumeration order,
    /// byte-identical at any thread count.
    pub fn run(&self) -> NetlistCampaignResult {
        self.run_on(rt::par::threads())
    }

    /// Runs the campaign on exactly `threads` worker threads under a
    /// plain policy.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or any shard fails (a plain policy has
    /// no retry budget to degrade into).
    pub fn run_on(&self, threads: usize) -> NetlistCampaignResult {
        let result = self.run_with(&CampaignExec::threads(threads));
        assert!(
            result.is_complete(),
            "netlist campaign lost shards: {:?}",
            result.incomplete
        );
        result
    }

    /// Enumerates the selected fault universes and precomputes the
    /// fault-free goldens, yielding a [`PreparedCampaign`] an external
    /// scheduler can drive shard by shard. [`NetlistCampaign::run_with`]
    /// is exactly `prepare()` driven through the in-process executor.
    pub fn prepare(&self) -> PreparedCampaign {
        let stuck = if self.sel.stuck() {
            enumerate_faults(&self.circuit)
        } else {
            Vec::new()
        };
        let transition = if self.sel.transition() {
            enumerate_transition_faults(&self.circuit)
        } else {
            Vec::new()
        };
        let goldens: Vec<TwoPatternResponse> = if transition.is_empty() {
            Vec::new()
        } else {
            self.tests
                .iter()
                .map(|t| launch_capture_response(&self.circuit, t, None))
                .collect()
        };
        PreparedCampaign {
            name: self.name.clone(),
            circuit: self.circuit.clone(),
            vectors: self.vectors.clone(),
            tests: self.tests.clone(),
            untestable: self.untestable.clone(),
            stuck,
            transition,
            goldens,
        }
    }

    /// Runs the campaign under an explicit execution policy. The plan has
    /// two segments — the stuck-at universe, then the transition universe
    /// — and shards never straddle the boundary, so each shard runs
    /// exactly one fault model. Records come back in plan order,
    /// byte-identical across thread counts, retries and kill-and-resume
    /// schedules; shards that exhaust the retry budget end up in the
    /// result's `incomplete` manifest.
    ///
    /// # Panics
    ///
    /// Panics if `policy.threads == 0` or the checkpoint file cannot be
    /// opened.
    pub fn run_with(&self, policy: &CampaignExec) -> NetlistCampaignResult {
        let _span = rt::obs::span("campaign.netlist");
        let prep = self.prepare();
        let job = NetlistJob {
            prep: &prep,
            sabotage: policy.sabotage.as_ref(),
        };
        let shards = prep.shards();
        let mut ck = policy.checkpoint.as_ref().map(|path| {
            exec::Checkpoint::open(path, prep.fingerprint())
                .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()))
        });
        let report = exec::run_shards(policy.threads, &policy.retry, ck.as_mut(), &shards, &job);
        let result = prep.result(report.records, report.incomplete);
        let (sa_total, sa_detected) = result.stuck_at();
        let (tr_total, tr_detected) = result.transition();
        rt::obs::log::info(
            "campaign",
            format!(
                "netlist {} stuck_at={sa_detected}/{sa_total} transition={tr_detected}/{tr_total} \
                 untestable={} failed_shards={}",
                self.name,
                result.untestable.len(),
                result.incomplete.len(),
            ),
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::fault::{FaultKind, MosFault};

    // One shared campaign run for the whole module (it is the expensive
    // part of the test suite).
    fn result() -> &'static CampaignResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<CampaignResult> = OnceLock::new();
        RESULT.get_or_init(|| FaultCampaign::new(&DesignParams::paper()).run())
    }

    #[test]
    fn coverage_ladder_matches_paper_shape() {
        let r = result();
        let dc = r.coverage_dc();
        let scan = r.coverage_dc_scan();
        let total = r.coverage_total();
        // The paper: 50.4 % -> 74.3 % -> 94.8 %. Our netlist granularity
        // differs in the decimals; the ladder shape must hold.
        assert!((0.40..=0.60).contains(&dc), "DC coverage {dc}");
        assert!((0.65..=0.85).contains(&scan), "DC+scan coverage {scan}");
        assert!((0.88..=0.99).contains(&total), "total coverage {total}");
        assert!(dc < scan && scan < total);
    }

    #[test]
    fn shorts_are_fully_covered() {
        // Table I: gate-source short, drain-source short and capacitor
        // short rows are 100 %.
        let r = result();
        for kind in [
            FaultKind::Mos(MosFault::GateSourceShort),
            FaultKind::Mos(MosFault::DrainSourceShort),
            FaultKind::CapShort,
        ] {
            let (total, detected) = r.by_kind(kind);
            assert_eq!(detected, total, "{kind} not fully covered");
        }
    }

    #[test]
    fn gate_open_is_the_weakest_row() {
        // Table I: gate open has the lowest coverage (87.8 % in the paper).
        let r = result();
        let gate_open = r.coverage_of_kind(FaultKind::Mos(MosFault::GateOpen));
        for kind in FaultKind::ALL {
            assert!(
                r.coverage_of_kind(kind) >= gate_open - 1e-12,
                "{kind} below gate-open"
            );
        }
        assert!(gate_open < 1.0);
    }

    #[test]
    fn tier_sets_intersect_but_neither_contains_the_other() {
        // The paper: "fault sets covered by the scan test and BIST are
        // intersecting but not subsets of each other".
        let r = result();
        assert!(!r.scan_only().is_empty(), "scan adds nothing over BIST");
        assert!(!r.bist_only().is_empty(), "BIST adds nothing over scan");
        assert!(!r.scan_and_bist().is_empty(), "tiers are disjoint");
    }

    #[test]
    fn undetected_faults_are_parametric_not_gross() {
        // Every escape must be a parametric effect or a structural
        // no-change — never a dead path or stuck node.
        let r = result();
        for rec in r.undetected() {
            match rec.effect {
                AnalogEffect::None
                | AnalogEffect::ArmImbalance { .. }
                | AnalogEffect::DynamicImbalance { .. }
                | AnalogEffect::SwingScale { .. }
                | AnalogEffect::CommonModeShift { .. }
                | AnalogEffect::BiasShift { .. }
                | AnalogEffect::WindowThresholdShift { .. }
                | AnalogEffect::CpCurrentScale { .. }
                | AnalogEffect::CpBalanceDrift { .. }
                | AnalogEffect::ClockDegraded { .. }
                | AnalogEffect::VcdlStuck { .. }
                | AnalogEffect::VcdlRangeScale { .. } => {}
                ref gross => panic!("gross effect escaped: {:?} from {}", gross, rec.fault),
            }
        }
    }

    #[test]
    fn empty_campaign_reports_zero_coverage() {
        // Regression: an empty record set used to read 100 % on all
        // tiers, so an accidentally empty campaign looked perfect.
        let r = CampaignResult::from_records(Vec::new());
        assert_eq!(r.coverage_dc(), 0.0);
        assert_eq!(r.coverage_dc_scan(), 0.0);
        assert_eq!(r.coverage_total(), 0.0);
        // The per-kind vacuous truth is intentionally preserved.
        assert_eq!(r.coverage_of_kind(FaultKind::CapShort), 1.0);
    }

    #[test]
    fn empty_fraction_vs_kind_coverage_asymmetry_is_pinned() {
        // The documented asymmetry, pinned for every fault kind: on an
        // empty record set the whole-campaign fractions read 0.0 (an
        // empty campaign has demonstrated nothing), while every per-kind
        // coverage reads the vacuous 1.0 (no member of an absent Table-I
        // row can escape). Neither side may silently adopt the other's
        // convention.
        let r = CampaignResult::from_records(Vec::new());
        assert_eq!(r.total(), 0);
        assert_eq!(r.coverage_dc(), 0.0);
        assert_eq!(r.coverage_dc_scan(), 0.0);
        assert_eq!(r.coverage_total(), 0.0);
        for kind in FaultKind::ALL {
            assert_eq!(r.by_kind(kind), (0, 0), "{kind}");
            assert_eq!(r.coverage_of_kind(kind), 1.0, "{kind}");
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let c = FaultCampaign::new(&DesignParams::paper());
        let seq = c.run_sequential();
        for threads in [2, 4] {
            assert_eq!(c.run_on(threads), seq, "diverged at {threads} threads");
        }
        assert_eq!(*result(), seq);
    }

    #[test]
    fn digital_campaign_reaches_full_stuck_at_coverage() {
        // The paper: 100 % stuck-at coverage on the logically simple
        // chains — here as a measured number over the PPSFP kernel.
        let records = DigitalCampaign::paper().run();
        assert!(!records.is_empty());
        assert_eq!(DigitalCampaign::coverage(&records), 1.0);
        assert!(records.iter().any(|r| r.chain == "chain-a"));
        assert!(records.iter().any(|r| r.chain == "chain-b"));
        assert_eq!(DigitalCampaign::coverage(&[]), 0.0);
    }

    #[test]
    fn digital_campaign_is_thread_count_invariant() {
        let campaign = DigitalCampaign::paper();
        let seq = campaign.run_on(1);
        for threads in [2, 4, 7] {
            assert_eq!(campaign.run_on(threads), seq, "diverged at {threads}");
        }
    }

    fn temp_ck(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dft-campaign-test-{}-{tag}-{n}.ck",
            std::process::id()
        ))
    }

    #[test]
    fn sabotaged_shard_recovers_with_retries() {
        // A seeded mutant panics one shard once; with a retry budget the
        // campaign must recover the full result, byte-identical.
        let c = FaultCampaign::new(&DesignParams::paper());
        let n_shards = c.universe().len().div_ceil(FAULT_SHARD_SIZE);
        let recovered = rt::check::quiet(|| {
            c.run_with(
                &CampaignExec::threads(2)
                    .with_retry(RetryPolicy::retries(2))
                    .with_sabotage(Sabotage::seeded(99, n_shards, 1)),
            )
        });
        assert!(recovered.is_complete());
        assert_eq!(&recovered, result(), "recovered records drifted");
    }

    #[test]
    fn exhausted_retries_degrade_to_partial_result() {
        // Without a retry budget a panicking shard must not abort the
        // campaign: the result carries the manifest and coverage over the
        // completed shards only.
        let c = FaultCampaign::new(&DesignParams::paper());
        let partial = rt::check::quiet(|| {
            c.run_with(&CampaignExec::threads(2).with_sabotage(Sabotage::times(3, u32::MAX)))
        });
        assert!(!partial.is_complete());
        assert_eq!(partial.incomplete().len(), 1);
        let failure = &partial.incomplete()[0];
        assert_eq!(failure.shard, 3);
        assert_eq!(partial.total(), result().total() - failure.len);
        // Coverage over completed shards stays a meaningful fraction.
        assert!(partial.coverage_total() > 0.5);
        // The surviving records are exactly the straight run's minus the
        // failed shard's range.
        let expected: Vec<&FaultRecord> = result()
            .records()
            .iter()
            .enumerate()
            .filter(|(i, _)| !(failure.start..failure.start + failure.len).contains(i))
            .map(|(_, r)| r)
            .collect();
        assert_eq!(partial.records().iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn killed_campaign_resumes_byte_identically() {
        let c = FaultCampaign::new(&DesignParams::paper());
        let path = temp_ck("fault-resume");
        // First run dies on shard 7 with no retry budget — everything
        // else lands in the checkpoint.
        let partial = rt::check::quiet(|| {
            c.run_with(
                &CampaignExec::threads(2)
                    .with_checkpoint(&path)
                    .with_sabotage(Sabotage::times(7, u32::MAX)),
            )
        });
        assert!(!partial.is_complete());
        // Second run resumes from the checkpoint and completes.
        let resumed = c.run_with(&CampaignExec::threads(2).with_checkpoint(&path));
        assert!(resumed.is_complete());
        assert_eq!(&resumed, result(), "resume not byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn digital_campaign_recovers_and_resumes() {
        let campaign = DigitalCampaign::paper();
        let straight = campaign.run_on(2);
        // Injected panic + retry budget: full recovery.
        let recovered = rt::check::quiet(|| {
            campaign.run_with(
                &CampaignExec::threads(2)
                    .with_retry(RetryPolicy::retries(1))
                    .with_sabotage(Sabotage::once(0)),
            )
        });
        assert!(recovered.is_complete());
        assert_eq!(recovered.records, straight);
        // Kill-and-resume through a checkpoint.
        let path = temp_ck("digital-resume");
        let partial = rt::check::quiet(|| {
            campaign.run_with(
                &CampaignExec::threads(2)
                    .with_checkpoint(&path)
                    .with_sabotage(Sabotage::times(1, u32::MAX)),
            )
        });
        assert!(!partial.is_complete());
        assert!(partial.records.len() < straight.len());
        let resumed = campaign.run_with(&CampaignExec::threads(2).with_checkpoint(&path));
        assert!(resumed.is_complete());
        assert_eq!(resumed.records, straight, "resume not byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn universe_matches_netlists() {
        let c = FaultCampaign::new(&DesignParams::paper());
        assert_eq!(c.universe().len(), result().total());
        assert_eq!(result().total(), 99 * 6 + 9);
    }

    #[test]
    fn netlist_campaign_scores_both_fault_models() {
        let divider = dsim::blocks::divider::Divider::new(2).circuit().clone();
        let campaign = NetlistCampaign::over("divider", divider.clone()).expect("acyclic");
        let result = campaign.run_on(2);
        assert!(result.is_complete());
        let (sa_total, _) = result.stuck_at();
        let (tr_total, tr_detected) = result.transition();
        assert_eq!(sa_total, enumerate_faults(&divider).len());
        assert_eq!(tr_total, 2 * divider.net_count());
        // The ATPG completeness property as a campaign-level fact: every
        // fault PODEM did not prove untestable is detected by replay.
        assert_eq!(tr_detected, tr_total - result.untestable.len());
        assert!(result.stuck_at_coverage() > 0.0);
        assert!(result.transition_coverage() > 0.0);
    }

    #[test]
    fn netlist_campaign_is_thread_count_invariant() {
        let campaign = NetlistCampaign::over(
            "divider",
            dsim::blocks::divider::Divider::new(2).circuit().clone(),
        )
        .expect("acyclic");
        let seq = campaign.run_on(1);
        for threads in [2, 4, 7] {
            assert_eq!(campaign.run_on(threads), seq, "diverged at {threads}");
        }
    }

    #[test]
    fn netlist_campaign_recovers_and_resumes() {
        let campaign = NetlistCampaign::over(
            "divider",
            dsim::blocks::divider::Divider::new(2).circuit().clone(),
        )
        .expect("acyclic");
        let straight = campaign.run_on(2);
        let recovered = rt::check::quiet(|| {
            campaign.run_with(
                &CampaignExec::threads(2)
                    .with_retry(RetryPolicy::retries(1))
                    .with_sabotage(Sabotage::once(0)),
            )
        });
        assert!(recovered.is_complete());
        assert_eq!(recovered, straight);
        let path = temp_ck("netlist-resume");
        let partial = rt::check::quiet(|| {
            campaign.run_with(
                &CampaignExec::threads(2)
                    .with_checkpoint(&path)
                    .with_sabotage(Sabotage::times(0, u32::MAX)),
            )
        });
        assert!(!partial.is_complete());
        let resumed = campaign.run_with(&CampaignExec::threads(2).with_checkpoint(&path));
        assert!(resumed.is_complete());
        assert_eq!(resumed, straight, "resume not byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn netlist_campaign_surfaces_frontend_errors() {
        let parse = NetlistCampaign::from_verilog("module m (a; endmodule").unwrap_err();
        assert!(matches!(parse, NetlistError::Verilog(_)), "{parse}");
        // A combinational loop lowers fine but cannot be time-expanded.
        let mut latch = Circuit::new("latch");
        let s = latch.input("s");
        let q = latch.net("q");
        let qb = latch.net("qb");
        latch.gate(dsim::circuit::GateKind::Nand, &[s, qb], q);
        latch.gate(dsim::circuit::GateKind::Not, &[q], qb);
        latch.output(q);
        let expand = NetlistCampaign::over("latch", latch).unwrap_err();
        assert!(matches!(expand, NetlistError::Expand(_)), "{expand}");
    }
}
