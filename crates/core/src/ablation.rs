//! DFT-element ablation: what each piece of Table II's added circuitry
//! buys.
//!
//! The paper's overhead (probe flip-flops, 100 MHz window comparators,
//! the CP-BIST comparator, the retimed-data check) is justified only if
//! removing any element costs coverage. [`DftOptions`] disables elements
//! individually and [`ablated_campaign`] re-runs the structural fault
//! campaign, quantifying each element's contribution.
//!
//! # Examples
//!
//! ```no_run
//! use dft::ablation::{ablated_campaign, DftOptions};
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! let full = ablated_campaign(&p, DftOptions::all());
//! let no_cp_bist = ablated_campaign(&p, DftOptions { cp_bist_comparator: false, ..DftOptions::all() });
//! assert!(no_cp_bist.coverage_total() < full.coverage_total());
//! ```

use link::netlists::functional_netlists;
use msim::effects::{resolve_effect, AnalogEffect};
use msim::fault::FaultUniverse;
use msim::params::DesignParams;

use crate::bist::Bist;
use crate::campaign::{CampaignResult, FaultRecord};
use crate::dc_test::DcTest;
use crate::scan_test::ScanTest;

/// Which DFT elements are present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DftOptions {
    /// The probe flip-flops on the FFE capacitor plates (4 of the 7 FFs
    /// in Table II).
    pub probe_ffs: bool,
    /// The clocked 100 MHz window comparators at the termination
    /// (the "Comparators (100 MHz)" row).
    pub dynamic_window: bool,
    /// The CP-BIST window comparator on the balance node (2 of the 4 DC
    /// comparators, Fig. 9).
    pub cp_bist_comparator: bool,
    /// The retimed-data comparison during BIST (the PRBS reference check).
    pub bist_data_check: bool,
}

impl DftOptions {
    /// Every element present (the paper's scheme).
    pub fn all() -> DftOptions {
        DftOptions {
            probe_ffs: true,
            dynamic_window: true,
            cp_bist_comparator: true,
            bist_data_check: true,
        }
    }
}

impl Default for DftOptions {
    fn default() -> DftOptions {
        DftOptions::all()
    }
}

/// Runs the structural fault campaign with the given DFT elements.
///
/// Element removal is applied at the observation level: without the probe
/// flip-flops the scan chain cannot capture a stuck capacitor plate;
/// without the 100 MHz comparators the toggling check is blind; without
/// the CP-BIST window `Vp` is unobserved; without the data check the BIST
/// passes on lock alone (a ref-\[9\]-style lock-only BIST).
pub fn ablated_campaign(p: &DesignParams, options: DftOptions) -> CampaignResult {
    let dc = DcTest::new(p);
    let scan = ScanTest::new(p);
    let bist = Bist::new(p);
    let blocks = functional_netlists();
    let universe = FaultUniverse::enumerate(blocks.iter().map(|(b, n)| (*b, n)));
    let records = universe
        .faults()
        .iter()
        .map(|&fault| {
            let effect = resolve_effect(&fault, p);
            let scan_hit = {
                let masked_chain =
                    !options.probe_ffs && matches!(effect, AnalogEffect::DataPathStuck);
                let masked_dynamic = !options.dynamic_window
                    && matches!(effect, AnalogEffect::DynamicImbalance { .. });
                if masked_chain || masked_dynamic {
                    // The element that would have caught it is absent;
                    // check whether any *other* scan observation fires.
                    match effect {
                        // DataPathStuck is also seen by the toggling
                        // comparators (if present): the line never toggles.
                        AnalogEffect::DataPathStuck => options.dynamic_window,
                        _ => false,
                    }
                } else {
                    scan.detects(&effect)
                }
            };
            let bist_hit = {
                let v = bist.execute(&effect);
                let vp = options.cp_bist_comparator && v.vp_flagged;
                let data = if options.bist_data_check {
                    !v.data_clean
                } else {
                    false
                };
                vp || data || v.lock_detector_saturated || !v.locked_in_budget
            };
            FaultRecord {
                fault,
                effect,
                dc: dc.detects(&effect),
                scan: scan_hit,
                bist: bist_hit,
            }
        })
        .collect();
    CampaignResult::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn full() -> &'static CampaignResult {
        static FULL: OnceLock<CampaignResult> = OnceLock::new();
        FULL.get_or_init(|| ablated_campaign(&DesignParams::paper(), DftOptions::all()))
    }

    #[test]
    fn full_options_match_the_reference_campaign() {
        let reference = crate::campaign::FaultCampaign::new(&DesignParams::paper()).run();
        assert_eq!(full().coverage_total(), reference.coverage_total());
        assert_eq!(full().coverage_dc(), reference.coverage_dc());
        assert_eq!(full().coverage_dc_scan(), reference.coverage_dc_scan());
    }

    #[test]
    fn removing_the_cp_bist_comparator_costs_coverage() {
        let p = DesignParams::paper();
        let without = ablated_campaign(
            &p,
            DftOptions {
                cp_bist_comparator: false,
                ..DftOptions::all()
            },
        );
        // The balance-arm faults (drift inside lock) become escapes.
        assert!(
            without.coverage_total() < full().coverage_total() - 0.02,
            "CP-BIST contributes: {} vs {}",
            without.coverage_total(),
            full().coverage_total()
        );
    }

    #[test]
    fn removing_the_dynamic_window_costs_scan_coverage() {
        let p = DesignParams::paper();
        let without = ablated_campaign(
            &p,
            DftOptions {
                dynamic_window: false,
                ..DftOptions::all()
            },
        );
        assert!(without.coverage_dc_scan() < full().coverage_dc_scan());
    }

    #[test]
    fn removing_the_data_check_costs_clock_path_coverage() {
        let p = DesignParams::paper();
        let without = ablated_campaign(
            &p,
            DftOptions {
                bist_data_check: false,
                ..DftOptions::all()
            },
        );
        // Dead/degraded clock paths that lock-detector-only BIST misses.
        assert!(without.coverage_total() < full().coverage_total());
    }

    #[test]
    fn probe_ffs_are_backed_up_by_other_observations() {
        // The probed data-path faults are also visible at DC and while
        // toggling, so dropping only the probe FFs must not change the
        // cumulative ladder (defense in depth) — their unique value is
        // *diagnostic* (chain-A localization), which the paper gets for
        // one flip-flop each.
        let p = DesignParams::paper();
        let without = ablated_campaign(
            &p,
            DftOptions {
                probe_ffs: false,
                ..DftOptions::all()
            },
        );
        assert_eq!(without.coverage_total(), full().coverage_total());
    }
}
