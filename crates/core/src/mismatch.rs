//! Monte-Carlo analysis of the programmed comparator offsets under
//! process mismatch.
//!
//! The paper deliberately mismatches the DC-test comparator's input pair
//! (0.8 µ vs 0.5 µ, Fig. 5) to program a 15 mV offset and claims this "is
//! sufficient to overcome any mismatch due to the manufacturing process".
//! This module quantifies that claim: random (Pelgrom-style) threshold
//! mismatch is added to the programmed offset, and we measure across many
//! virtual dies
//!
//! * the **false-failure rate** — a healthy die's 30 mV input failing the
//!   DC comparison because mismatch ate the margin, and
//! * the **escape inflation** — a marginal fault slipping past because
//!   mismatch widened the effective threshold.
//!
//! Trials are split into fixed 512-die chunks, each drawing from its own
//! [`rt::rng::Rng::seed_from_stream`] substream, and the chunks are fanned
//! across cores by [`rt::par`]; because the chunk grid depends only on the
//! trial count, the result is bit-identical on 1 or N threads.
//!
//! # Examples
//!
//! ```
//! use dft::mismatch::MonteCarlo;
//! use msim::params::DesignParams;
//! use msim::units::Volt;
//!
//! let mc = MonteCarlo::new(&DesignParams::paper(), Volt::from_mv(3.0));
//! let r = mc.run(2000, 7);
//! // At a realistic 3 mV sigma the paper's 15 mV margin holds easily.
//! assert_eq!(r.false_failures, 0);
//! ```

use link::rx::ReceiverFrontEnd;
use msim::params::DesignParams;
use msim::units::Volt;
use rt::rng::Rng;

/// Dies per parallel chunk. Part of the determinism contract: the chunk
/// grid is a function of the trial count only, never of the thread count.
const CHUNK_TRIALS: usize = 512;

/// Monte-Carlo driver for DC-comparator mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarlo {
    p: DesignParams,
    sigma: Volt,
}

/// Aggregate result of a mismatch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchResult {
    /// Number of virtual dies simulated.
    pub trials: usize,
    /// Healthy dies that failed the DC comparison (must be ~0 for the
    /// paper's claim to hold).
    pub false_failures: usize,
    /// Dies on which a 20 mV erosion fault (detectable at nominal) was
    /// missed because mismatch relaxed the threshold.
    pub marginal_fault_escapes: usize,
}

impl MismatchResult {
    /// False-failure rate in `[0, 1]`.
    pub fn false_failure_rate(&self) -> f64 {
        self.false_failures as f64 / self.trials as f64
    }

    /// Escape rate of the marginal fault in `[0, 1]`.
    pub fn escape_rate(&self) -> f64 {
        self.marginal_fault_escapes as f64 / self.trials as f64
    }
}

impl MonteCarlo {
    /// Creates a driver with random input-referred offset of standard
    /// deviation `sigma` per comparator (a 130 nm comparator with common
    /// centroid layout, per the paper, sits at a few mV).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn new(p: &DesignParams, sigma: Volt) -> MonteCarlo {
        assert!(sigma.value() > 0.0, "mismatch sigma must be positive");
        MonteCarlo {
            p: p.clone(),
            sigma,
        }
    }

    /// Simulates `trials` virtual dies with the given seed, fanning
    /// fixed-size chunks of dies across the available cores. The record
    /// is identical for any thread count (see the module docs).
    pub fn run(&self, trials: usize, seed: u64) -> MismatchResult {
        let chunks = trials.div_ceil(CHUNK_TRIALS);
        let per_chunk = rt::par::parallel_map_indexed(chunks, |chunk| {
            let in_chunk = CHUNK_TRIALS.min(trials - chunk * CHUNK_TRIALS);
            self.run_chunk(in_chunk, Rng::seed_from_stream(seed, chunk as u64))
        });
        let (false_failures, escapes) = per_chunk
            .iter()
            .fold((0, 0), |(f, e), &(cf, ce)| (f + cf, e + ce));
        MismatchResult {
            trials,
            false_failures,
            marginal_fault_escapes: escapes,
        }
    }

    /// One chunk of dies: `(false_failures, escapes)`.
    fn run_chunk(&self, trials: usize, mut rng: Rng) -> (usize, usize) {
        let healthy = self.p.dc_test_input();
        // A 20 mV erosion fault: nominally detected (30 - 20 = 10 < 15).
        let faulty = healthy - Volt::from_mv(20.0);
        let mut false_failures = 0;
        let mut escapes = 0;
        for _ in 0..trials {
            let delta = Volt(rng.gaussian() * self.sigma.value());
            // The die's comparator has offset 15 mV + delta.
            let offset = (self.p.cmp_offset + delta).max(Volt::from_mv(0.1));
            let rx = ReceiverFrontEnd::new(offset);
            if !rx.dc_pass(healthy, true) {
                false_failures += 1;
            }
            // The fault escapes when the eroded 10 mV still clears the
            // (mismatch-lowered) threshold.
            if rx.dc_pass(faulty, true) {
                escapes += 1;
            }
        }
        (false_failures, escapes)
    }

    /// Sweeps mismatch sigma and returns `(sigma_mv, result)` pairs —
    /// the data behind the `mismatch_monte_carlo` experiment binary.
    pub fn sweep(p: &DesignParams, sigmas_mv: &[f64], trials: usize) -> Vec<(f64, MismatchResult)> {
        sigmas_mv
            .iter()
            .map(|&s| {
                let mc = MonteCarlo::new(p, Volt::from_mv(s));
                (s, mc.run(trials, s.to_bits()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_margin_holds_at_realistic_mismatch() {
        // 3 mV sigma: the healthy 15 mV margin is 5 sigma away.
        let mc = MonteCarlo::new(&DesignParams::paper(), Volt::from_mv(3.0));
        let r = mc.run(5000, 1);
        assert_eq!(r.false_failures, 0, "paper claim violated");
        // The 20 mV fault leaves 10 mV; the 5 mV detection margin is
        // ~1.7 sigma, so a few escapes are expected but not a collapse.
        assert!(r.escape_rate() < 0.10, "escape rate {}", r.escape_rate());
    }

    #[test]
    fn excessive_mismatch_breaks_the_scheme() {
        // At 10 mV sigma the margin is only 1.5 sigma: false failures
        // appear — the quantitative limit of the paper's sizing argument.
        let mc = MonteCarlo::new(&DesignParams::paper(), Volt::from_mv(10.0));
        let r = mc.run(5000, 2);
        assert!(r.false_failures > 0);
        assert!(r.false_failure_rate() < 0.5);
    }

    #[test]
    fn monotone_in_sigma() {
        let p = DesignParams::paper();
        let sweep = MonteCarlo::sweep(&p, &[2.0, 6.0, 12.0], 4000);
        assert!(sweep[0].1.false_failures <= sweep[1].1.false_failures);
        assert!(sweep[1].1.false_failures <= sweep[2].1.false_failures);
    }

    #[test]
    fn deterministic_per_seed() {
        let mc = MonteCarlo::new(&DesignParams::paper(), Volt::from_mv(5.0));
        assert_eq!(mc.run(1000, 9), mc.run(1000, 9));
        assert_ne!(mc.run(1000, 9), mc.run(1000, 10));
    }

    #[test]
    fn ragged_chunk_counts_still_sum_to_trials() {
        // 1300 trials = 2 full 512-die chunks + one 276-die remainder.
        let mc = MonteCarlo::new(&DesignParams::paper(), Volt::from_mv(10.0));
        let r = mc.run(1300, 3);
        assert_eq!(r.trials, 1300);
        assert!(r.false_failures <= 1300 && r.marginal_fault_escapes <= 1300);
        assert_eq!(r, mc.run(1300, 3));
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let _ = MonteCarlo::new(&DesignParams::paper(), Volt::ZERO);
    }
}
