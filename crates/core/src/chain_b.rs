//! Scan chain B as one stitched gate-level circuit.
//!
//! The paper's clock-control-path chain runs from the window-comparator
//! capture flip-flops through the charge-pump control and FSM to the UP/DN
//! ring counter and the lock detector. [`ChainB`] builds that whole path
//! as a single `dsim` circuit — capture FFs, correction FSM, one-hot ring
//! counter and saturating lock detector wired together — so the paper's
//! scan procedures run at gate level:
//!
//! * **preload & count** — scan a one-hot image into the ring counter,
//!   pulse a correction, read the rotated image back (§II.B),
//! * **all-zero image** — no phase selected, state must persist (§II.B),
//! * **chain continuity** (shared with the switch-matrix test),
//! * full **stuck-at** and **transition** coverage of the composite.
//!
//! # Examples
//!
//! ```
//! use dft::chain_b::ChainB;
//!
//! let chain = ChainB::new(10);
//! // Capture FFs (2) + FSM state (1) + ring (10) + lock detector (3).
//! assert_eq!(chain.circuit().dff_count(), 16);
//! assert!(chain.run_preload_and_count_test());
//! ```

use dsim::circuit::{Circuit, GateKind, NetId, SimState};
use dsim::logic::Logic;
use dsim::scan::chain_continuity;

/// The stitched clock-control scan chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainB {
    circuit: Circuit,
    above_in: NetId,
    below_in: NetId,
    lock_reset: NetId,
    upst: NetId,
    dnst: NetId,
    ring_q: Vec<NetId>,
    lock_q: Vec<NetId>,
    phases: usize,
}

impl ChainB {
    /// Builds the chain for an `n`-phase ring counter.
    ///
    /// Flip-flop (scan) order matches the paper: capture-H, capture-L,
    /// FSM state, ring counter bits, lock-detector bits.
    ///
    /// # Panics
    ///
    /// Panics if `phases < 2`.
    pub fn new(phases: usize) -> ChainB {
        assert!(phases >= 2, "ring counter needs at least two stages");
        let mut c = Circuit::new("scan-chain-b");
        // Analog-side inputs: the window comparator's raw outputs.
        let above_in = c.input("win_above");
        let below_in = c.input("win_below");
        let lock_reset = c.input("lock_reset");

        // Capture flip-flops (the two FFs Table II adds).
        let above = c.net("above_q");
        let below = c.net("below_q");
        c.dff(above_in, above);
        c.dff(below_in, below);

        // Control FSM (same logic as dsim::blocks::fsm, stitched inline).
        let armed = c.net("armed");
        let req = c.net("req");
        c.gate(GateKind::Or, &[above, below], req);
        let not_armed = c.net("not_armed");
        c.gate(GateKind::Not, &[armed], not_armed);
        let fire = c.net("fire");
        c.gate(GateKind::And, &[req, not_armed], fire);
        let upst = c.net("upst");
        c.gate(GateKind::And, &[fire, below], upst);
        let dnst = c.net("dnst");
        c.gate(GateKind::And, &[fire, above], dnst);
        c.dff(req, armed);
        c.output(upst);
        c.output(dnst);

        // Ring counter: enabled by `fire`, direction = `above`.
        let ring_q: Vec<NetId> = (0..phases).map(|i| c.net(format!("ring_q{i}"))).collect();
        for (i, &qi) in ring_q.iter().enumerate() {
            let prev = ring_q[(i + phases - 1) % phases];
            let next = ring_q[(i + 1) % phases];
            let rotated = c.net(format!("ring_rot{i}"));
            c.gate(GateKind::Mux, &[above, next, prev], rotated);
            let d = c.net(format!("ring_d{i}"));
            c.gate(GateKind::Mux, &[fire, qi, rotated], d);
            c.dff(d, qi);
            c.output(qi);
        }

        // Lock detector: 3-bit saturating counter counting `fire` pulses.
        let lock_q: Vec<NetId> = (0..3).map(|i| c.net(format!("lock_q{i}"))).collect();
        let saturated = c.net("lock_sat");
        c.gate(GateKind::And, &lock_q, saturated);
        let not_sat = c.net("lock_not_sat");
        c.gate(GateKind::Not, &[saturated], not_sat);
        let inc = c.net("lock_inc");
        c.gate(GateKind::And, &[fire, not_sat], inc);
        let not_reset = c.net("lock_not_reset");
        c.gate(GateKind::Not, &[lock_reset], not_reset);
        let mut carry = inc;
        for (i, &qi) in lock_q.iter().enumerate() {
            let sum = c.net(format!("lock_sum{i}"));
            c.gate(GateKind::Xor, &[qi, carry], sum);
            let d = c.net(format!("lock_d{i}"));
            c.gate(GateKind::And, &[sum, not_reset], d);
            if i + 1 < 3 {
                let cout = c.net(format!("lock_c{i}"));
                c.gate(GateKind::And, &[qi, carry], cout);
                carry = cout;
            }
            c.dff(d, qi);
            c.output(qi);
        }
        c.output(saturated);

        ChainB {
            circuit: c,
            above_in,
            below_in,
            lock_reset,
            upst,
            dnst,
            ring_q,
            lock_q,
            phases,
        }
    }

    /// The stitched circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Phase count of the ring counter.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Builds the scan-load image: capture FFs, FSM state, ring one-hot
    /// (or all-zero), lock counter value.
    fn image(&self, hot: Option<usize>, lock_value: u8) -> Vec<Logic> {
        let mut img = vec![Logic::Zero; 3]; // captures + armed
        for i in 0..self.phases {
            img.push(Logic::from_bool(hot == Some(i)));
        }
        for bit in 0..3 {
            img.push(Logic::from_bool(lock_value >> bit & 1 == 1));
        }
        img
    }

    fn drive(&self, s: &mut SimState, above: bool, below: bool) {
        s.set_input(&self.circuit, self.above_in, Logic::from_bool(above));
        s.set_input(&self.circuit, self.below_in, Logic::from_bool(below));
        s.set_input(&self.circuit, self.lock_reset, Logic::Zero);
    }

    fn ring_hot(&self, s: &SimState) -> Option<usize> {
        let ones: Vec<usize> = self
            .ring_q
            .iter()
            .enumerate()
            .filter(|(_, &q)| s.net(q) == Logic::One)
            .map(|(i, _)| i)
            .collect();
        if ones.len() == 1 {
            Some(ones[0])
        } else {
            None
        }
    }

    fn lock_count(&self, s: &SimState) -> u8 {
        self.lock_q
            .iter()
            .enumerate()
            .map(|(i, &q)| u8::from(s.net(q) == Logic::One) << i)
            .sum()
    }

    /// The paper's §II.B ring-counter procedure: preload one-hot via scan,
    /// de-assert scan enable, clock with the window comparator reporting
    /// out-of-window (in both directions), re-enable scan and verify the
    /// rotated image and the lock-detector count. Returns `true` on pass.
    pub fn run_preload_and_count_test(&self) -> bool {
        let mut s = SimState::for_circuit(&self.circuit);
        // Preload hot at 3, lock counter cleared (scan load).
        s.load_ffs(&self.image(Some(3), 0));
        // Above-window: capture cycle brings `above` into the FSM, the
        // next cycle fires the correction.
        self.drive(&mut s, true, false);
        self.circuit.tick(&mut s); // captures above=1
        self.circuit.tick(&mut s); // fire: ring rotates up, lock counts
        if self.ring_hot(&s) != Some(4) || self.lock_count(&s) != 1 {
            return false;
        }
        // Re-arm inside the window.
        self.drive(&mut s, false, false);
        self.circuit.tick(&mut s);
        self.circuit.tick(&mut s);
        // Below-window: rotate back down.
        self.drive(&mut s, false, true);
        self.circuit.tick(&mut s);
        self.circuit.tick(&mut s);
        self.ring_hot(&s) == Some(3) && self.lock_count(&s) == 2
    }

    /// The paper's all-zero image check: with no phase selected the state
    /// must persist (nothing self-activates). Returns `true` on pass.
    pub fn run_all_zero_test(&self) -> bool {
        let mut s = SimState::for_circuit(&self.circuit);
        s.load_ffs(&self.image(None, 0));
        self.drive(&mut s, true, false);
        for _ in 0..8 {
            self.circuit.tick(&mut s);
        }
        // The ring stays all-zero; only the lock detector counted the
        // (single, FSM-limited) correction request.
        self.ring_q.iter().all(|&q| s.net(q) == Logic::Zero) && self.lock_count(&s) <= 1
    }

    /// Chain continuity (flush pattern through all 16 flip-flops).
    pub fn run_continuity_test(&self) -> bool {
        let mut s = SimState::for_circuit(&self.circuit);
        s.load_ffs(&vec![Logic::Zero; self.circuit.dff_count()]);
        chain_continuity(&self.circuit, &mut s)
    }

    /// The UPst/DNst strong-pump pulses for one divided clock, given the
    /// captured window decision (used by the scan CP procedure).
    pub fn pulses(&self, s: &SimState) -> (bool, bool) {
        (
            s.net(self.upst) == Logic::One,
            s.net(self.dnst) == Logic::One,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsim::atpg::random_vectors;
    use dsim::stuck_at::scan_coverage;
    use dsim::transition::{transition_coverage, two_pattern_tests};

    #[test]
    fn composite_structure() {
        let chain = ChainB::new(10);
        assert_eq!(chain.circuit().dff_count(), 2 + 1 + 10 + 3);
        assert_eq!(chain.phases(), 10);
    }

    #[test]
    fn paper_procedures_pass_on_healthy_logic() {
        let chain = ChainB::new(10);
        assert!(chain.run_preload_and_count_test());
        assert!(chain.run_all_zero_test());
        assert!(chain.run_continuity_test());
    }

    #[test]
    fn pulses_follow_the_window_decision() {
        let chain = ChainB::new(10);
        let mut s = SimState::for_circuit(chain.circuit());
        s.load_ffs(&chain.image(Some(0), 0));
        chain.drive(&mut s, true, false);
        chain.circuit().tick(&mut s); // capture
        chain.circuit().eval(&mut s);
        let (upst, dnst) = chain.pulses(&s);
        assert!(dnst && !upst, "above VH must pulse DNst");
    }

    #[test]
    fn lock_detector_saturates_in_composite() {
        let chain = ChainB::new(10);
        let mut s = SimState::for_circuit(chain.circuit());
        s.load_ffs(&chain.image(Some(0), 0));
        // Alternate outside/inside so the FSM re-arms: 12 corrections.
        for _ in 0..12 {
            chain.drive(&mut s, true, false);
            chain.circuit().tick(&mut s);
            chain.circuit().tick(&mut s);
            chain.drive(&mut s, false, false);
            chain.circuit().tick(&mut s);
            chain.circuit().tick(&mut s);
        }
        assert_eq!(chain.lock_count(&s), 7, "3-bit counter must saturate");
        // One-hotness survived 12 rotations.
        assert!(chain.ring_hot(&s).is_some());
    }

    #[test]
    fn composite_reaches_full_stuck_at_coverage() {
        // The whole clock-control chain, tested as the paper tests it:
        // standard scan patterns, 100 % stuck-at.
        let chain = ChainB::new(4); // smaller ring keeps the sim quick
        let vectors = random_vectors(chain.circuit(), 256, 29);
        let cov = scan_coverage(chain.circuit(), &vectors);
        assert!(
            (cov.coverage() - 1.0).abs() < 1e-12,
            "undetected: {:?}",
            cov.undetected()
        );
    }

    #[test]
    fn composite_reaches_full_testable_transition_coverage() {
        // The paper: the coarse path runs at the divided clock, so its
        // delay faults are covered too. One fault in the composite is
        // launch-on-capture *untestable*: slow-to-fall on the lock
        // detector's `not_sat` net would need the FSM to fire on two
        // consecutive cycles, which its pulse limiter forbids by
        // construction — a functionally-redundant delay fault. Everything
        // testable is covered.
        let chain = ChainB::new(4);
        // Mixed-weight pattern set: the saturating counter's corner
        // transitions need nearly-all-ones loads that balanced random
        // vectors rarely produce.
        let mut vectors = random_vectors(chain.circuit(), 512, 31);
        vectors.extend(dsim::atpg::weighted_vectors(chain.circuit(), 256, 33, 0.85));
        vectors.extend(dsim::atpg::weighted_vectors(chain.circuit(), 256, 35, 0.15));
        let cov = transition_coverage(chain.circuit(), &two_pattern_tests(&vectors));
        let undetected = cov.undetected();
        assert!(
            undetected.len() <= 1,
            "more than the known-redundant fault escaped: {undetected:?}"
        );
        if let Some(f) = undetected.first() {
            assert_eq!(chain.circuit().net_name(f.net), "lock_not_sat");
            assert!(!f.slow_to_rise, "only the falling edge is untestable");
        }
    }
}
