//! Shipped-quality economics of the test flow.
//!
//! The paper's closing argument is that testability "enables the use of
//! low swing interconnect in large scale high volume digital systems".
//! This module quantifies that: the classic Williams–Brown model relates
//! process yield `Y` and fault coverage `T` to the **defect level** (the
//! fraction of shipped parts that are defective),
//!
//! ```text
//! DL = 1 − Y^(1−T)
//! ```
//!
//! so each tier of the paper's flow (50.4 % → 74.3 % → 94.8 %) buys a
//! concrete DPPM improvement.
//!
//! # Examples
//!
//! ```
//! use dft::quality::{defect_level, dppm};
//!
//! // 90 % yield, the paper's 94.8 % total coverage:
//! let dl = defect_level(0.9, 0.948);
//! assert!(dppm(dl) < 5500.0);
//! // With no test at all the same process ships 100 000 DPPM.
//! assert!(dppm(defect_level(0.9, 0.0)) > 99_000.0);
//! ```

use crate::campaign::CampaignResult;

/// Williams–Brown defect level for process yield `yield_` and fault
/// coverage `coverage`, both in `[0, 1]`.
///
/// # Panics
///
/// Panics if either argument leaves `[0, 1]` or `yield_` is zero.
pub fn defect_level(yield_: f64, coverage: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be a fraction"
    );
    assert!(
        yield_ > 0.0 && yield_ <= 1.0,
        "yield must be a positive fraction"
    );
    1.0 - yield_.powf(1.0 - coverage)
}

/// Converts a defect level to defective parts per million.
pub fn dppm(defect_level: f64) -> f64 {
    defect_level * 1e6
}

/// One row of the per-tier quality ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Tier label.
    pub tier: &'static str,
    /// Cumulative fault coverage of the flow up to this tier.
    pub coverage: f64,
    /// Resulting defect level.
    pub defect_level: f64,
    /// Resulting DPPM.
    pub dppm: f64,
}

/// Builds the per-tier quality ladder for a campaign result at a given
/// process yield.
pub fn quality_ladder(result: &CampaignResult, yield_: f64) -> Vec<QualityRow> {
    let tiers = [
        ("no test", 0.0),
        ("DC test", result.coverage_dc()),
        ("DC + scan", result.coverage_dc_scan()),
        ("DC + scan + BIST", result.coverage_total()),
    ];
    tiers
        .into_iter()
        .map(|(tier, coverage)| {
            let dl = defect_level(yield_, coverage);
            QualityRow {
                tier,
                coverage,
                defect_level: dl,
                dppm: dppm(dl),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Y = 0.9, T = 0: DL = 1 - 0.9 = 10 %.
        assert!((defect_level(0.9, 0.0) - 0.1).abs() < 1e-12);
        // Perfect coverage ships zero defects.
        assert_eq!(defect_level(0.9, 1.0), 0.0);
        // Williams-Brown textbook point: Y = 0.5, T = 0.9 -> DL ≈ 6.7 %.
        let dl = defect_level(0.5, 0.9);
        assert!((dl - 0.0670).abs() < 5e-4, "{dl}");
    }

    #[test]
    fn monotone_in_coverage() {
        let mut last = f64::INFINITY;
        for t in [0.0, 0.25, 0.5, 0.75, 0.948, 1.0] {
            let dl = defect_level(0.85, t);
            assert!(dl <= last);
            last = dl;
        }
    }

    #[test]
    fn monotone_in_yield() {
        // A better process ships fewer defects at fixed coverage.
        assert!(defect_level(0.95, 0.9) < defect_level(0.6, 0.9));
    }

    #[test]
    fn dppm_scaling() {
        assert_eq!(dppm(0.001), 1000.0);
        assert_eq!(dppm(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "yield must be a positive fraction")]
    fn zero_yield_rejected() {
        let _ = defect_level(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "coverage must be a fraction")]
    fn coverage_above_one_rejected() {
        let _ = defect_level(0.9, 1.1);
    }
}
