//! Multi-lane test scheduling.
//!
//! The paper notes that *"the divider in this circuit can be shared across
//! multiple such receivers in the chip and tested separately"* — real
//! deployments run many low-swing links side by side. This module models
//! the test time of an `n`-lane deployment under the paper's flow:
//!
//! * **DC test** — two vectors observed per lane; lanes measured serially
//!   on one tester channel (DC settle dominated).
//! * **Scan test** — each lane's chains A and B shift at the 100 MHz scan
//!   clock; chains of different lanes can be daisy-chained (serial) or
//!   given parallel scan-in pins.
//! * **BIST** — each lane locks autonomously, so all lanes run
//!   concurrently; the 2 µs budget is paid once, not per lane (the whole
//!   point of built-in self test).
//! * **Crosstalk tier** (optional, beyond the paper) — an at-speed
//!   victim/aggressor scenario ([`CrosstalkScenario`]) that replays the
//!   PRBS pattern with neighbors switching through the lane-to-lane
//!   coupling capacitance, catching marginal comparators that pass with
//!   quiet neighbors (see [`link::farm`]).
//!
//! # Examples
//!
//! ```
//! use dft::multilane::TestSchedule;
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! let serial = TestSchedule::new(&p, 16, false);
//! let parallel = TestSchedule::new(&p, 16, true);
//! // Parallel scan pins shorten the dominant scan phase.
//! assert!(parallel.total().value() < serial.total().value());
//! // BIST time does not grow with lane count.
//! assert_eq!(parallel.bist_time(), TestSchedule::new(&p, 1, true).bist_time());
//! ```

use link::farm::{CellRecord, FarmCell, BITS_PER_CELL};
use msim::params::DesignParams;
use msim::units::Sec;

/// Scan-chain geometry of one lane (from the paper's Fig. 1 chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneChains {
    /// Flip-flops in scan chain A (data path).
    pub chain_a_bits: usize,
    /// Flip-flops in scan chain B (clock control path).
    pub chain_b_bits: usize,
    /// Scan patterns applied per lane.
    pub patterns: usize,
}

impl LaneChains {
    /// The paper's lane: chain A ≈ 9 elements, chain B spans the window
    /// captures, FSM, 10-bit ring counter and 3-bit lock detector.
    pub fn paper() -> LaneChains {
        LaneChains {
            chain_a_bits: 9,
            chain_b_bits: 2 + 1 + 10 + 3,
            patterns: 64,
        }
    }
}

/// The at-speed victim/aggressor scenario of the optional crosstalk
/// tier: every lane takes the victim role once per round while its
/// neighbors replay the aggressor PRBS.
///
/// # Examples
///
/// ```
/// use dft::multilane::CrosstalkScenario;
///
/// let x = CrosstalkScenario::new(16, 0.06);
/// // Three-coloring of a linear bus: each lane is a victim in one of
/// // three rounds while both its neighbors aggress.
/// assert_eq!(x.victim_rounds(), 3);
/// // A lone lane has no neighbors — the tier is a no-op.
/// assert_eq!(CrosstalkScenario::new(1, 0.06).victim_rounds(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkScenario {
    /// Lanes in the bus.
    pub lanes: usize,
    /// Neighbor coupling factor (coupling capacitance per aggressor as
    /// a fraction of a lane's total shunt capacitance).
    pub coupling: f64,
}

impl CrosstalkScenario {
    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `coupling` is negative or non-finite.
    pub fn new(lanes: usize, coupling: f64) -> CrosstalkScenario {
        assert!(lanes > 0, "at least one lane");
        assert!(
            coupling.is_finite() && coupling >= 0.0,
            "coupling must be finite and non-negative"
        );
        CrosstalkScenario { lanes, coupling }
    }

    /// PRBS replay rounds needed so every lane is a victim while both
    /// its neighbors switch: a 3-coloring of the linear bus (fewer for
    /// degenerate buses, zero for a lone lane).
    pub fn victim_rounds(&self) -> usize {
        if self.lanes == 1 {
            0
        } else {
            self.lanes.min(3)
        }
    }

    /// Evaluates the scenario on one grid cell at this bus's lane count
    /// and coupling: the full coupled-vs-quiet mismatch census from
    /// [`link::farm`].
    pub fn evaluate(&self, cell: &FarmCell, seed: u64) -> CellRecord {
        let mut cell = *cell;
        cell.lanes = self.lanes;
        cell.coupling = self.coupling;
        cell.evaluate(seed)
    }

    /// Whether the scenario activates failures the quiet-neighbor test
    /// misses on this cell — the reason to pay for the extra tier.
    pub fn activates(&self, cell: &FarmCell, seed: u64) -> bool {
        self.evaluate(cell, seed).xtalk_activated() > 0
    }
}

/// A test-time schedule for an `n`-lane deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSchedule {
    p: DesignParams,
    lanes: usize,
    parallel_scan: bool,
    chains: LaneChains,
    xtalk: Option<CrosstalkScenario>,
}

impl TestSchedule {
    /// Builds a schedule. `parallel_scan` gives every lane its own
    /// scan-in/out pins; otherwise lane chains are daisy-chained.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(p: &DesignParams, lanes: usize, parallel_scan: bool) -> TestSchedule {
        assert!(lanes > 0, "at least one lane");
        TestSchedule {
            p: p.clone(),
            lanes,
            parallel_scan,
            chains: LaneChains::paper(),
            xtalk: None,
        }
    }

    /// Adds the optional at-speed crosstalk tier at this schedule's
    /// lane count.
    pub fn with_crosstalk(mut self, coupling: f64) -> TestSchedule {
        self.xtalk = Some(CrosstalkScenario::new(self.lanes, coupling));
        self
    }

    /// The crosstalk tier, if enabled.
    pub fn crosstalk(&self) -> Option<&CrosstalkScenario> {
        self.xtalk.as_ref()
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// DC tier: two settle-and-strobe vectors per lane, serial. A settle
    /// window of 20 line time constants is budgeted per vector.
    pub fn dc_time(&self) -> Sec {
        let settle = Sec::from_ns(100.0); // 20 tau of the 2 kΩ/1 pF line
        settle * 2.0 * self.lanes as f64
    }

    /// Scan tier: shift + capture for every pattern over both chains.
    pub fn scan_time(&self) -> Sec {
        let bits_per_lane = self.chains.chain_a_bits + self.chains.chain_b_bits;
        let effective_bits = if self.parallel_scan {
            bits_per_lane
        } else {
            bits_per_lane * self.lanes
        };
        // Shift in + shift out per pattern, one capture cycle each.
        let cycles = (2 * effective_bits + 1) * self.chains.patterns;
        self.p.scan_clock.period() * cycles as f64
    }

    /// BIST tier: all lanes lock concurrently; one budget covers the chip.
    pub fn bist_time(&self) -> Sec {
        self.p.ui() * self.p.bist_lock_budget as f64
    }

    /// Crosstalk tier: one PRBS replay of [`BITS_PER_CELL`] bits per
    /// pattern per victim round, all victims of a round concurrent.
    /// Zero when the tier is disabled or the bus has one lane.
    pub fn xtalk_time(&self) -> Sec {
        match &self.xtalk {
            None => Sec::ZERO,
            Some(x) => {
                let bits = x.victim_rounds() * self.chains.patterns * BITS_PER_CELL;
                self.p.ui() * bits as f64
            }
        }
    }

    /// Total flow time.
    pub fn total(&self) -> Sec {
        self.dc_time() + self.scan_time() + self.bist_time() + self.xtalk_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DesignParams {
        DesignParams::paper()
    }

    #[test]
    fn single_lane_budget() {
        let s = TestSchedule::new(&p(), 1, false);
        // BIST = 5000 UIs = 2 us.
        assert!((s.bist_time().us() - 2.0).abs() < 1e-9);
        assert!(s.total().us() < 100.0, "single lane should test in <100 us");
    }

    #[test]
    fn bist_is_lane_count_invariant() {
        let one = TestSchedule::new(&p(), 1, false);
        let many = TestSchedule::new(&p(), 64, false);
        assert_eq!(one.bist_time(), many.bist_time());
    }

    #[test]
    fn serial_scan_grows_linearly() {
        let s1 = TestSchedule::new(&p(), 1, false).scan_time();
        let s8 = TestSchedule::new(&p(), 8, false).scan_time();
        let ratio = s8 / s1;
        assert!((ratio - 8.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn parallel_pins_flatten_scan_time() {
        let serial = TestSchedule::new(&p(), 32, false);
        let parallel = TestSchedule::new(&p(), 32, true);
        assert!(parallel.scan_time().value() < serial.scan_time().value() / 10.0);
        // DC stays serial either way (one measurement channel).
        assert_eq!(parallel.dc_time(), serial.dc_time());
    }

    #[test]
    fn scan_dominates_at_high_lane_count_without_parallel_pins() {
        let s = TestSchedule::new(&p(), 128, false);
        assert!(s.scan_time().value() > s.bist_time().value());
        assert!(s.scan_time().value() > s.dc_time().value());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = TestSchedule::new(&p(), 0, false);
    }

    #[test]
    fn crosstalk_tier_defaults_off_and_costs_nothing() {
        let plain = TestSchedule::new(&p(), 8, true);
        assert!(plain.crosstalk().is_none());
        assert_eq!(plain.xtalk_time(), Sec::ZERO);
        let x = TestSchedule::new(&p(), 8, true).with_crosstalk(0.06);
        assert!(x.crosstalk().is_some());
        assert!(x.xtalk_time().value() > 0.0);
        assert_eq!(x.total(), plain.total() + x.xtalk_time());
    }

    #[test]
    fn crosstalk_rounds_saturate_at_three() {
        assert_eq!(CrosstalkScenario::new(1, 0.1).victim_rounds(), 0);
        assert_eq!(CrosstalkScenario::new(2, 0.1).victim_rounds(), 2);
        assert_eq!(CrosstalkScenario::new(3, 0.1).victim_rounds(), 3);
        assert_eq!(CrosstalkScenario::new(64, 0.1).victim_rounds(), 3);
        // At-speed replay rounds don't grow with the bus: the tier stays
        // cheap at fabric scale.
        let small = TestSchedule::new(&p(), 4, true).with_crosstalk(0.1);
        let large = TestSchedule::new(&p(), 256, true).with_crosstalk(0.1);
        assert_eq!(small.xtalk_time(), large.xtalk_time());
    }

    #[test]
    fn crosstalk_scenario_activates_faults_a_quiet_bus_misses() {
        use link::farm::{FarmAxes, FarmGrid};
        let mut axes = FarmAxes::paper_point();
        axes.sigmas_mv = vec![8.0];
        let cell = FarmGrid::new(axes, 7).unwrap().cell(0);
        let noisy = CrosstalkScenario::new(4, 0.08);
        assert!(noisy.activates(&cell, 0xABCD), "coupled bus must activate");
        let quiet = CrosstalkScenario::new(4, 0.0);
        assert!(
            !quiet.activates(&cell, 0xABCD),
            "no coupling, no activation"
        );
        assert!(!CrosstalkScenario::new(1, 0.08).activates(&cell, 0xABCD));
    }

    #[test]
    #[should_panic(expected = "coupling must be finite")]
    fn negative_coupling_rejected() {
        let _ = CrosstalkScenario::new(4, -0.1);
    }
}
