//! Multi-lane test scheduling.
//!
//! The paper notes that *"the divider in this circuit can be shared across
//! multiple such receivers in the chip and tested separately"* — real
//! deployments run many low-swing links side by side. This module models
//! the test time of an `n`-lane deployment under the paper's flow:
//!
//! * **DC test** — two vectors observed per lane; lanes measured serially
//!   on one tester channel (DC settle dominated).
//! * **Scan test** — each lane's chains A and B shift at the 100 MHz scan
//!   clock; chains of different lanes can be daisy-chained (serial) or
//!   given parallel scan-in pins.
//! * **BIST** — each lane locks autonomously, so all lanes run
//!   concurrently; the 2 µs budget is paid once, not per lane (the whole
//!   point of built-in self test).
//!
//! # Examples
//!
//! ```
//! use dft::multilane::TestSchedule;
//! use msim::params::DesignParams;
//!
//! let p = DesignParams::paper();
//! let serial = TestSchedule::new(&p, 16, false);
//! let parallel = TestSchedule::new(&p, 16, true);
//! // Parallel scan pins shorten the dominant scan phase.
//! assert!(parallel.total().value() < serial.total().value());
//! // BIST time does not grow with lane count.
//! assert_eq!(parallel.bist_time(), TestSchedule::new(&p, 1, true).bist_time());
//! ```

use msim::params::DesignParams;
use msim::units::Sec;

/// Scan-chain geometry of one lane (from the paper's Fig. 1 chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneChains {
    /// Flip-flops in scan chain A (data path).
    pub chain_a_bits: usize,
    /// Flip-flops in scan chain B (clock control path).
    pub chain_b_bits: usize,
    /// Scan patterns applied per lane.
    pub patterns: usize,
}

impl LaneChains {
    /// The paper's lane: chain A ≈ 9 elements, chain B spans the window
    /// captures, FSM, 10-bit ring counter and 3-bit lock detector.
    pub fn paper() -> LaneChains {
        LaneChains {
            chain_a_bits: 9,
            chain_b_bits: 2 + 1 + 10 + 3,
            patterns: 64,
        }
    }
}

/// A test-time schedule for an `n`-lane deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSchedule {
    p: DesignParams,
    lanes: usize,
    parallel_scan: bool,
    chains: LaneChains,
}

impl TestSchedule {
    /// Builds a schedule. `parallel_scan` gives every lane its own
    /// scan-in/out pins; otherwise lane chains are daisy-chained.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(p: &DesignParams, lanes: usize, parallel_scan: bool) -> TestSchedule {
        assert!(lanes > 0, "at least one lane");
        TestSchedule {
            p: p.clone(),
            lanes,
            parallel_scan,
            chains: LaneChains::paper(),
        }
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// DC tier: two settle-and-strobe vectors per lane, serial. A settle
    /// window of 20 line time constants is budgeted per vector.
    pub fn dc_time(&self) -> Sec {
        let settle = Sec::from_ns(100.0); // 20 tau of the 2 kΩ/1 pF line
        settle * 2.0 * self.lanes as f64
    }

    /// Scan tier: shift + capture for every pattern over both chains.
    pub fn scan_time(&self) -> Sec {
        let bits_per_lane = self.chains.chain_a_bits + self.chains.chain_b_bits;
        let effective_bits = if self.parallel_scan {
            bits_per_lane
        } else {
            bits_per_lane * self.lanes
        };
        // Shift in + shift out per pattern, one capture cycle each.
        let cycles = (2 * effective_bits + 1) * self.chains.patterns;
        self.p.scan_clock.period() * cycles as f64
    }

    /// BIST tier: all lanes lock concurrently; one budget covers the chip.
    pub fn bist_time(&self) -> Sec {
        self.p.ui() * self.p.bist_lock_budget as f64
    }

    /// Total flow time.
    pub fn total(&self) -> Sec {
        self.dc_time() + self.scan_time() + self.bist_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DesignParams {
        DesignParams::paper()
    }

    #[test]
    fn single_lane_budget() {
        let s = TestSchedule::new(&p(), 1, false);
        // BIST = 5000 UIs = 2 us.
        assert!((s.bist_time().us() - 2.0).abs() < 1e-9);
        assert!(s.total().us() < 100.0, "single lane should test in <100 us");
    }

    #[test]
    fn bist_is_lane_count_invariant() {
        let one = TestSchedule::new(&p(), 1, false);
        let many = TestSchedule::new(&p(), 64, false);
        assert_eq!(one.bist_time(), many.bist_time());
    }

    #[test]
    fn serial_scan_grows_linearly() {
        let s1 = TestSchedule::new(&p(), 1, false).scan_time();
        let s8 = TestSchedule::new(&p(), 8, false).scan_time();
        let ratio = s8 / s1;
        assert!((ratio - 8.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn parallel_pins_flatten_scan_time() {
        let serial = TestSchedule::new(&p(), 32, false);
        let parallel = TestSchedule::new(&p(), 32, true);
        assert!(parallel.scan_time().value() < serial.scan_time().value() / 10.0);
        // DC stays serial either way (one measurement channel).
        assert_eq!(parallel.dc_time(), serial.dc_time());
    }

    #[test]
    fn scan_dominates_at_high_lane_count_without_parallel_pins() {
        let s = TestSchedule::new(&p(), 128, false);
        assert!(s.scan_time().value() > s.bist_time().value());
        assert!(s.scan_time().value() > s.dc_time().value());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = TestSchedule::new(&p(), 0, false);
    }
}
