//! DFT overhead accounting (the paper's Table II).
//!
//! Walks the test architecture and counts every circuit element the DFT
//! scheme adds to the functional link. The inventory reproduces Table II
//! exactly:
//!
//! | entity | number |
//! |---|---|
//! | Flip-flop | 7 |
//! | Comparators (DC) | 4 |
//! | Comparators (100 MHz) | 2 |
//! | D-Latch | 1 |
//! | 2×1 Multiplexer | 2 |
//! | 3-bit saturating UP counter | 1 |
//! | Control signals | 2 |
//! | Logic gates | 6 |
//!
//! # Examples
//!
//! ```
//! use dft::overhead::DftOverhead;
//!
//! let o = DftOverhead::paper();
//! assert_eq!(o.count(dft::overhead::Entity::FlipFlop), 7);
//! ```

use std::fmt;

/// A class of added DFT circuit element (a Table II row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Entity {
    /// Scan/probe/capture flip-flops.
    FlipFlop,
    /// DC comparators with programmed offset (Fig. 5).
    ComparatorDc,
    /// Clocked comparators operated at the 100 MHz scan frequency
    /// (Fig. 6 at the termination).
    Comparator100MHz,
    /// Transparent D-latch (the TX half-cycle delay).
    DLatch,
    /// 2:1 multiplexers.
    Mux2,
    /// 3-bit saturating UP counter (the lock detector).
    SaturatingCounter3,
    /// Dedicated control inputs.
    ControlSignal,
    /// Miscellaneous logic gates.
    LogicGate,
}

impl Entity {
    /// All entity classes in Table II row order.
    pub const ALL: [Entity; 8] = [
        Entity::FlipFlop,
        Entity::ComparatorDc,
        Entity::Comparator100MHz,
        Entity::DLatch,
        Entity::Mux2,
        Entity::SaturatingCounter3,
        Entity::ControlSignal,
        Entity::LogicGate,
    ];

    /// Table II row label.
    pub fn label(self) -> &'static str {
        match self {
            Entity::FlipFlop => "Flip-flop",
            Entity::ComparatorDc => "Comparators (DC)",
            Entity::Comparator100MHz => "Comparators (100 MHz)",
            Entity::DLatch => "D-Latch",
            Entity::Mux2 => "2x1 Multiplexer",
            Entity::SaturatingCounter3 => "3 bit saturating UP counter",
            Entity::ControlSignal => "Control signals",
            Entity::LogicGate => "Logic gates",
        }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One added element with its purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadItem {
    /// Element class.
    pub entity: Entity,
    /// Instance name.
    pub name: &'static str,
    /// What the element is for.
    pub purpose: &'static str,
}

/// The full added-circuitry inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DftOverhead {
    items: Vec<OverheadItem>,
}

impl DftOverhead {
    /// The paper's DFT scheme inventory.
    pub fn paper() -> DftOverhead {
        let items = vec![
            // --- Flip-flops (7) ---
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_CSP+",
                purpose: "probes the Cs driver plate, plus arm (Fig. 3, shaded)",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_CSA+",
                purpose: "probes the aCs driver plate, plus arm (Fig. 3, shaded)",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_CSP-",
                purpose: "probes the Cs driver plate, minus arm",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_CSA-",
                purpose: "probes the aCs driver plate, minus arm",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_WINH",
                purpose: "captures the VH window comparator output into chain B",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_WINL",
                purpose: "captures the VL window comparator output into chain B",
            },
            OverheadItem {
                entity: Entity::FlipFlop,
                name: "FF_RETIME",
                purpose: "extends chain A by one when the phi_Rx-bar retimer is selected",
            },
            // --- DC comparators (4) ---
            OverheadItem {
                entity: Entity::ComparatorDc,
                name: "CMP_DC_P+",
                purpose: "15 mV offset comparator, plus-arm positive polarity (Fig. 5)",
            },
            OverheadItem {
                entity: Entity::ComparatorDc,
                name: "CMP_DC_P-",
                purpose: "15 mV offset comparator, plus-arm negative polarity",
            },
            OverheadItem {
                entity: Entity::ComparatorDc,
                name: "CMP_BIST_H",
                purpose: "CP-BIST window comparator upper half (Fig. 9)",
            },
            OverheadItem {
                entity: Entity::ComparatorDc,
                name: "CMP_BIST_L",
                purpose: "CP-BIST window comparator lower half (Fig. 9)",
            },
            // --- 100 MHz comparators (2) ---
            OverheadItem {
                entity: Entity::Comparator100MHz,
                name: "CMP_TERM_H",
                purpose: "termination window comparator upper half (Fig. 6), scan-clocked",
            },
            OverheadItem {
                entity: Entity::Comparator100MHz,
                name: "CMP_TERM_L",
                purpose: "termination window comparator lower half, scan-clocked",
            },
            // --- Latch (1) ---
            OverheadItem {
                entity: Entity::DLatch,
                name: "LAT_HALF",
                purpose: "TX half-cycle delay for the PD UP/DN two-pass test (transparent in mission mode)",
            },
            // --- Muxes (2) ---
            OverheadItem {
                entity: Entity::Mux2,
                name: "MUX_SCANCLK",
                purpose: "drives the coarse loop from the external scan clock in test mode (Fig. 1)",
            },
            OverheadItem {
                entity: Entity::Mux2,
                name: "MUX_RETIME",
                purpose: "selects phi_Rx vs phi_Rx-bar for the domain-crossing retimer",
            },
            // --- Counter (1) ---
            OverheadItem {
                entity: Entity::SaturatingCounter3,
                name: "LOCKDET",
                purpose: "BIST lock detector: logs coarse-correction requests",
            },
            // --- Control signals (2) ---
            OverheadItem {
                entity: Entity::ControlSignal,
                name: "Sen",
                purpose: "scan enable",
            },
            OverheadItem {
                entity: Entity::ControlSignal,
                name: "Ten",
                purpose: "test mode enable",
            },
            // --- Logic gates (6) ---
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_BIASP",
                purpose: "ties the PMOS charge-pump bias to GND in scan mode",
            },
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_BIASN",
                purpose: "ties the NMOS charge-pump bias to VDD in scan mode",
            },
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_WINFORCE",
                purpose: "forces the window comparator input to mid-threshold in scan mode",
            },
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_CLKGATE",
                purpose: "gates the divided clock during scan shift",
            },
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_BISTEN",
                purpose: "enables the CP-BIST window comparator only after lock",
            },
            OverheadItem {
                entity: Entity::LogicGate,
                name: "G_LATCHEN",
                purpose: "enables the TX half-cycle latch in test mode",
            },
        ];
        DftOverhead { items }
    }

    /// All items.
    pub fn items(&self) -> &[OverheadItem] {
        &self.items
    }

    /// Count of one entity class (a Table II cell).
    pub fn count(&self, entity: Entity) -> usize {
        self.items.iter().filter(|i| i.entity == entity).count()
    }

    /// `(label, count)` rows in Table II order.
    pub fn table_rows(&self) -> Vec<(&'static str, usize)> {
        Entity::ALL
            .iter()
            .map(|&e| (e.label(), self.count(e)))
            .collect()
    }
}

impl Default for DftOverhead {
    fn default() -> DftOverhead {
        DftOverhead::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_two_exactly() {
        let o = DftOverhead::paper();
        assert_eq!(o.count(Entity::FlipFlop), 7);
        assert_eq!(o.count(Entity::ComparatorDc), 4);
        assert_eq!(o.count(Entity::Comparator100MHz), 2);
        assert_eq!(o.count(Entity::DLatch), 1);
        assert_eq!(o.count(Entity::Mux2), 2);
        assert_eq!(o.count(Entity::SaturatingCounter3), 1);
        assert_eq!(o.count(Entity::ControlSignal), 2);
        assert_eq!(o.count(Entity::LogicGate), 6);
    }

    #[test]
    fn table_rows_in_order() {
        let rows = DftOverhead::paper().table_rows();
        assert_eq!(rows[0], ("Flip-flop", 7));
        assert_eq!(rows[7], ("Logic gates", 6));
        let total: usize = rows.iter().map(|(_, n)| n).sum();
        assert_eq!(total, DftOverhead::paper().items().len());
    }

    #[test]
    fn every_item_has_a_purpose() {
        for item in DftOverhead::paper().items() {
            assert!(!item.purpose.is_empty(), "{} lacks a purpose", item.name);
        }
    }

    #[test]
    fn display_labels_nonempty() {
        for e in Entity::ALL {
            assert!(!format!("{e}").is_empty());
        }
    }
}
