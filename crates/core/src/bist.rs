//! The at-speed BIST tier.
//!
//! The paper's final tier: run the interconnect with random data at
//! 2.5 Gbps and let the receiver lock. Pass criteria (all simulated):
//!
//! * lock is achieved **within 5000 cycles (2 µs)** — from any initial
//!   condition at most half the DLL phases of coarse correction are
//!   needed, so the **3-bit saturating lock detector** must not saturate;
//! * the retimed data is error-free once locked;
//! * the **CP-BIST window comparator** (Fig. 9, 150 mV window) reads the
//!   charge-balance node `Vp` inside its window — catching the
//!   balance-arm/amplifier faults and the scan-masked drain–source shorts
//!   the paper highlights.
//!
//! # Examples
//!
//! ```
//! use dft::bist::Bist;
//! use msim::effects::AnalogEffect;
//! use msim::params::DesignParams;
//! use msim::units::Volt;
//!
//! let bist = Bist::new(&DesignParams::paper());
//! assert!(!bist.detects(&AnalogEffect::None));
//! // Balance-arm faults drift Vp out of the 150 mV window: caught here,
//! // invisible to both DC and scan tiers.
//! assert!(bist.detects(&AnalogEffect::CpBalanceDrift { dv: Volt::from_mv(400.0) }));
//! ```

use link::synchronizer::{LockOutcome, RunConfig, Synchronizer};
use msim::blocks::comparator::{WindowComparator, WindowDecision};
use msim::blocks::vcdl::Vcdl;
use msim::effects::AnalogEffect;
use msim::params::DesignParams;
use msim::units::Volt;

use crate::scan_test::{cp_faults_from_effect, window_from_effect};

/// Number of post-lock sampling errors tolerated before the data check
/// flags (filters isolated jitter tails in an 8000-cycle run).
pub const DATA_ERROR_TOLERANCE: u64 = 2;

/// Saturation value of the 3-bit lock detector.
pub const LOCK_DETECTOR_SATURATION: u64 = 7;

/// Verdict of one BIST execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BistVerdict {
    /// Lock/sampling outcome of the at-speed run.
    pub outcome: LockOutcome,
    /// Whether the CP-BIST window comparator flagged `Vp`.
    pub vp_flagged: bool,
    /// Whether the lock detector saturated.
    pub lock_detector_saturated: bool,
    /// Whether lock was achieved within the budget.
    pub locked_in_budget: bool,
    /// Whether the post-lock data check passed.
    pub data_clean: bool,
}

impl BistVerdict {
    /// Overall pass (the fault, if any, escaped the BIST).
    pub fn pass(&self) -> bool {
        self.locked_in_budget
            && !self.lock_detector_saturated
            && self.data_clean
            && !self.vp_flagged
    }
}

/// The BIST tier.
#[derive(Debug, Clone, PartialEq)]
pub struct Bist {
    p: DesignParams,
    run: RunConfig,
}

impl Bist {
    /// Creates the tier with the paper's BIST run configuration.
    pub fn new(p: &DesignParams) -> Bist {
        Bist {
            p: p.clone(),
            run: RunConfig::paper_bist(),
        }
    }

    /// Creates the tier with a custom run configuration.
    pub fn with_run(p: &DesignParams, run: RunConfig) -> Bist {
        Bist { p: p.clone(), run }
    }

    /// The run configuration.
    pub fn run_config(&self) -> &RunConfig {
        &self.run
    }

    /// Eye-margin multiplier a data-path effect imposes at speed: vertical
    /// eye loss consumes horizontal margin roughly proportionally.
    fn margin_factor(&self, effect: &AnalogEffect) -> f64 {
        let nominal = self.p.dc_test_input().value();
        let f = match *effect {
            AnalogEffect::LineArmStuck { .. } => 0.0,
            AnalogEffect::ArmImbalance { dv } | AnalogEffect::DynamicImbalance { dv } => {
                1.0 - dv.value() / nominal
            }
            AnalogEffect::SwingScale { factor } => factor.min(1.0),
            AnalogEffect::CouplingDcShift { dv } => 1.0 - dv.abs().value() / (2.0 * nominal),
            AnalogEffect::CommonModeShift { dv } => 1.0 - dv.abs().value() / 0.2,
            // The data path frozen: nothing to sample at all.
            AnalogEffect::DataPathStuck => 0.0,
            _ => 1.0,
        };
        f.clamp(0.0, 1.0)
    }

    /// Assembles the (possibly faulty) synchronizer for an effect.
    fn build(&self, effect: &AnalogEffect) -> Synchronizer {
        let (weak_f, strong_f) = cp_faults_from_effect(effect);
        let mut sync = Synchronizer::new(&self.p)
            .with_weak_faults(weak_f)
            .with_strong_faults(strong_f)
            .with_window(window_from_effect(effect, &self.p));
        match *effect {
            AnalogEffect::CpBalanceDrift { dv } => {
                sync = sync.with_balance_drift(dv);
            }
            AnalogEffect::LoopCapShort => {
                sync = sync.with_vc_pinned(Volt::ZERO);
            }
            AnalogEffect::ClockPathDead => {
                sync = sync.with_clock_dead();
            }
            AnalogEffect::ClockDegraded { severity } => {
                sync = sync.with_clock_degradation(severity);
            }
            AnalogEffect::VcdlStuck { frac } => {
                sync = sync.with_vcdl(Vcdl::from_params(&self.p).with_stuck(frac));
            }
            AnalogEffect::VcdlRangeScale { factor } => {
                sync = sync.with_vcdl(Vcdl::from_params(&self.p).with_range_scale(factor));
            }
            _ => {}
        }
        sync
    }

    fn execute_from(&self, effect: &AnalogEffect, initial_phase: usize) -> BistVerdict {
        let mut sync = self.build(effect).with_initial_phase(initial_phase);
        let mut rc = self.run.clone();
        rc.eye_half_width_ui *= self.margin_factor(effect);
        let outcome = sync.run(&rc, None);

        let cp_window = WindowComparator::centered(self.p.vp_nominal, self.p.cp_bist_window);
        let vp_flagged = cp_window.evaluate(outcome.vp) != WindowDecision::Inside;
        let lock_detector_saturated = outcome.corrections >= LOCK_DETECTOR_SATURATION;
        let locked_in_budget = outcome
            .lock_cycle
            .is_some_and(|c| c <= self.p.bist_lock_budget);
        let data_clean = outcome.errors_after_lock <= DATA_ERROR_TOLERANCE;

        // Deterministic lock-acquisition metrics: every BIST execution in
        // a campaign reports how the synchronizer behaved.
        rt::obs::count("bist.executions", 1);
        rt::obs::count("bist.locked_in_budget", u64::from(locked_in_budget));
        rt::obs::count("bist.vp_flagged", u64::from(vp_flagged));
        rt::obs::count(
            "bist.lock_detector_saturated",
            u64::from(lock_detector_saturated),
        );
        match outcome.lock_cycle {
            Some(cycle) => rt::obs::record("bist.lock_cycles", cycle),
            None => rt::obs::count("bist.lock_failures", 1),
        }
        rt::obs::record("bist.corrections", outcome.corrections);

        BistVerdict {
            outcome,
            vp_flagged,
            lock_detector_saturated,
            locked_in_budget,
            data_clean,
        }
    }

    /// Executes the BIST against an effect and returns the worst verdict.
    ///
    /// The paper argues lock must succeed *from any initial condition*;
    /// two passes from opposite DLL phases approach the eye center from
    /// both directions, so each coarse-reset direction of the strong pump
    /// is exercised — this is what catches the scan-masked drain–source
    /// short on either strong-pump current source.
    pub fn execute(&self, effect: &AnalogEffect) -> BistVerdict {
        let below = self.execute_from(effect, 0);
        if !below.pass() {
            return below;
        }
        self.execute_from(effect, self.p.dll_phases / 2)
    }

    /// Whether the BIST detects the effect (any pass fails).
    pub fn detects(&self, effect: &AnalogEffect) -> bool {
        !self.execute(effect).pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim::effects::{Pump, PumpDir, WindowSide};

    fn bist() -> Bist {
        Bist::new(&DesignParams::paper())
    }

    #[test]
    fn healthy_link_passes() {
        let v = bist().execute(&AnalogEffect::None);
        assert!(v.pass(), "{v:?}");
        assert!(v.outcome.corrections <= 5);
    }

    #[test]
    fn balance_drift_flagged_by_cp_window() {
        // Outside the ±75 mV window: flagged.
        assert!(bist().detects(&AnalogEffect::CpBalanceDrift {
            dv: Volt::from_mv(200.0)
        }));
        assert!(bist().detects(&AnalogEffect::CpBalanceDrift {
            dv: Volt::from_mv(-300.0)
        }));
        // Inside: an honest escape.
        assert!(!bist().detects(&AnalogEffect::CpBalanceDrift {
            dv: Volt::from_mv(60.0)
        }));
    }

    #[test]
    fn scan_masked_strong_source_short_caught_at_speed() {
        // The paper's flagship BIST catch: the 20x reset current
        // overshoots the window and the lock detector saturates.
        let e = AnalogEffect::CpCurrentScale {
            pump: Pump::Strong,
            dir: PumpDir::Down,
            factor: 20.0,
        };
        let v = bist().execute(&e);
        assert!(v.lock_detector_saturated, "{v:?}");
    }

    #[test]
    fn halved_pump_current_is_an_escape() {
        // A diode-connected (gate-drain shorted) source: slower but
        // functional — the parametric escape of the gate-drain row.
        let e = AnalogEffect::CpCurrentScale {
            pump: Pump::Weak,
            dir: PumpDir::Up,
            factor: 0.5,
        };
        assert!(!bist().detects(&e));
    }

    #[test]
    fn dead_clock_fails_data_check() {
        let v = bist().execute(&AnalogEffect::ClockPathDead);
        assert!(!v.pass());
        assert!(!v.locked_in_budget);
    }

    #[test]
    fn severe_clock_degradation_caught_mild_escapes() {
        assert!(bist().detects(&AnalogEffect::ClockDegraded { severity: 0.7 }));
        assert!(!bist().detects(&AnalogEffect::ClockDegraded { severity: 0.3 }));
    }

    #[test]
    fn stuck_vcdl_at_rail_saturates_lock_detector() {
        let v = bist().execute(&AnalogEffect::VcdlStuck { frac: 0.0 });
        assert!(v.lock_detector_saturated, "{v:?}");
    }

    #[test]
    fn loop_cap_short_fails() {
        assert!(bist().detects(&AnalogEffect::LoopCapShort));
    }

    #[test]
    fn weak_pump_leak_detected_at_speed() {
        assert!(bist().detects(&AnalogEffect::CpAlwaysOn {
            pump: Pump::Weak,
            dir: PumpDir::Up,
        }));
    }

    #[test]
    fn datapath_collapse_also_fails_bist() {
        // Tier intersection: gross data-path faults fail the data check
        // here too, even though DC/scan already catch them.
        assert!(bist().detects(&AnalogEffect::SwingScale { factor: 0.0 }));
        assert!(bist().detects(&AnalogEffect::DataPathStuck));
    }

    #[test]
    fn window_stuck_high_true_breaks_lock() {
        // The coarse loop is told Vc is always above VH: the strong pump
        // drags Vc to ground and the loop cannot settle cleanly.
        let e = AnalogEffect::WindowStuck {
            side: WindowSide::High,
            output: true,
        };
        let v = bist().execute(&e);
        // Scan catches this decisively; at speed it may or may not break
        // lock depending on where the eye sits — just require a sane
        // verdict here.
        let _ = v.pass();
    }

    #[test]
    fn sub_window_bias_drift_escapes() {
        assert!(!bist().detects(&AnalogEffect::BiasShift {
            dv: Volt::from_mv(25.0)
        }));
    }
}
