//! Production test-program generation.
//!
//! Everything the paper describes — the two DC vectors, the scan
//! procedures with their chain A/B interplay, the BIST run — ordered into
//! the concrete step list a tester (or an on-die test controller) would
//! execute, with per-step apply/observe descriptions, control-signal
//! states and time estimates. The program is the hand-off artifact of the
//! whole DFT scheme.
//!
//! # Examples
//!
//! ```
//! use dft::test_program::TestProgram;
//! use msim::params::DesignParams;
//!
//! let prog = TestProgram::paper(&DesignParams::paper());
//! assert!(prog.steps().len() >= 10);
//! // The flow is ordered cheapest-first: DC, then scan, then BIST.
//! assert!(prog.render().contains("BIST"));
//! ```

use msim::params::DesignParams;
use msim::units::Sec;

/// Which tier a step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Static two-vector test.
    Dc,
    /// Scan procedures.
    Scan,
    /// At-speed built-in self test.
    Bist,
}

impl Tier {
    /// Tier label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Dc => "DC",
            Tier::Scan => "scan",
            Tier::Bist => "BIST",
        }
    }
}

/// One program step.
#[derive(Debug, Clone, PartialEq)]
pub struct TestStep {
    /// Owning tier.
    pub tier: Tier,
    /// Step name.
    pub name: &'static str,
    /// Stimulus to apply.
    pub apply: String,
    /// Expected observation.
    pub observe: String,
    /// Control signals asserted (`Sen`, `Ten`, …).
    pub controls: &'static str,
    /// Estimated duration.
    pub duration: Sec,
}

/// The ordered test program.
#[derive(Debug, Clone, PartialEq)]
pub struct TestProgram {
    steps: Vec<TestStep>,
}

impl TestProgram {
    /// Builds the paper's flow at a design point.
    pub fn paper(p: &DesignParams) -> TestProgram {
        let scan_period = p.scan_clock.period();
        let settle = Sec::from_ns(100.0);
        let mut steps = Vec::new();

        // --- DC tier (§IV: two vectors) ---
        steps.push(TestStep {
            tier: Tier::Dc,
            name: "dc-vector-1",
            apply: "hold interconnect input at logic 1; settle".into(),
            observe: format!(
                "offset comparators read (1,0); bias window quiet (offset {})",
                p.cmp_offset
            ),
            controls: "Ten=1",
            duration: settle,
        });
        steps.push(TestStep {
            tier: Tier::Dc,
            name: "dc-vector-0",
            apply: "hold interconnect input at logic 0; settle".into(),
            observe: "offset comparators read (0,1); bias window quiet".into(),
            controls: "Ten=1",
            duration: settle,
        });

        // --- Scan tier (§II) ---
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "chain-continuity",
            apply: "flush 0101… through chains A and B".into(),
            observe: "patterns emerge intact (also the switch-matrix check)".into(),
            controls: "Sen=1, Ten=1, scan clock",
            duration: scan_period * 64.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "toggling-pattern",
            apply: "toggle the link at the scan frequency".into(),
            observe: "clocked window comparator quiet (dynamic mismatch check)".into(),
            controls: "Sen=0, Ten=1",
            duration: scan_period * 128.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "pd-two-pass-up",
            apply: "toggling data, half-cycle latch transparent".into(),
            observe: "Alexander PD asserts UP".into(),
            controls: "Ten=1, LAT_HALF off",
            duration: scan_period * 32.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "pd-two-pass-dn",
            apply: "toggling data, half-cycle latch enabled".into(),
            observe: "Alexander PD asserts DN".into(),
            controls: "Ten=1, LAT_HALF on",
            duration: scan_period * 32.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "cp-drive-up",
            apply: "biases railed; chain A forces PD UP".into(),
            observe: format!("Vc crosses VH = {}", p.window_high),
            controls: "Sen=1, Ten=1, biases railed",
            duration: scan_period * 100.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "fsm-reset-down",
            apply: "release scan; FSM resets Vc from the high rail".into(),
            observe: "window comparator captures read Inside".into(),
            controls: "Sen=0, Ten=1",
            duration: scan_period * 20.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "cp-drive-down",
            apply: "chain A forces PD DN".into(),
            observe: format!("Vc crosses VL = {}", p.window_low),
            controls: "Sen=1, Ten=1, biases railed",
            duration: scan_period * 100.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "fsm-reset-up",
            apply: "release scan; FSM resets Vc from the low rail".into(),
            observe: "window comparator captures read Inside".into(),
            controls: "Sen=0, Ten=1",
            duration: scan_period * 20.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "ring-preload-count",
            apply: "preload one-hot via chain B; clock with Vc at a rail".into(),
            observe: "image rotates one position per correction".into(),
            controls: "Sen toggled, Ten=1",
            duration: scan_period * 80.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "switch-matrix-all-zero",
            apply: "preload all-zero image".into(),
            observe: "chain A stops clocking (no phase selected)".into(),
            controls: "Sen toggled, Ten=1",
            duration: scan_period * 80.0,
        });
        steps.push(TestStep {
            tier: Tier::Scan,
            name: "switch-matrix-one-hot-sweep",
            apply: format!("preload each of the {} one-hot images", p.dll_phases),
            observe: "chain A continuity under every selected phase".into(),
            controls: "Sen toggled, Ten=1",
            duration: scan_period * 64.0 * p.dll_phases as f64,
        });

        // --- BIST tier (§III) ---
        steps.push(TestStep {
            tier: Tier::Bist,
            name: "bist-lock",
            apply: "random data at speed from reset".into(),
            observe: format!(
                "lock within {} cycles; 3-bit lock detector below saturation",
                p.bist_lock_budget
            ),
            controls: "Ten=0, BIST enable",
            duration: p.ui() * p.bist_lock_budget as f64,
        });
        steps.push(TestStep {
            tier: Tier::Bist,
            name: "cp-bist-window",
            apply: "after lock, enable the CP-BIST comparator".into(),
            observe: format!(
                "Vp within {} ± {} of nominal",
                p.vp_nominal,
                p.cp_bist_window / 2.0
            ),
            controls: "BIST enable",
            duration: p.ui() * 1000.0,
        });
        steps.push(TestStep {
            tier: Tier::Bist,
            name: "retimed-data-check",
            apply: "compare retimed data against the PRBS reference".into(),
            observe: "no post-lock errors".into(),
            controls: "BIST enable",
            duration: p.ui() * 3000.0,
        });

        TestProgram { steps }
    }

    /// The ordered steps.
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Total estimated duration.
    pub fn total_duration(&self) -> Sec {
        self.steps.iter().map(|s| s.duration).sum()
    }

    /// Steps of one tier.
    pub fn tier_steps(&self, tier: Tier) -> Vec<&TestStep> {
        self.steps.iter().filter(|s| s.tier == tier).collect()
    }

    /// Renders the program as a numbered text listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut current: Option<Tier> = None;
        for (i, s) in self.steps.iter().enumerate() {
            if current != Some(s.tier) {
                out.push_str(&format!("== {} tier ==\n", s.tier.label()));
                current = Some(s.tier);
            }
            out.push_str(&format!(
                "{:>2}. {:<28} [{:>8.2} us] {}\n    apply  : {}\n    observe: {}\n",
                i + 1,
                s.name,
                s.duration.us(),
                s.controls,
                s.apply,
                s.observe
            ));
        }
        out.push_str(&format!(
            "total estimated test time: {:.1} us\n",
            self.total_duration().us()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> TestProgram {
        TestProgram::paper(&DesignParams::paper())
    }

    #[test]
    fn tiers_are_ordered_cheapest_first() {
        let steps = prog();
        let tiers: Vec<Tier> = steps.steps().iter().map(|s| s.tier).collect();
        let mut sorted = tiers.clone();
        sorted.sort();
        assert_eq!(tiers, sorted, "DC before scan before BIST");
    }

    #[test]
    fn covers_every_paper_procedure() {
        let names: Vec<&str> = prog().steps().iter().map(|s| s.name).collect();
        for required in [
            "dc-vector-1",
            "dc-vector-0",
            "chain-continuity",
            "toggling-pattern",
            "pd-two-pass-up",
            "pd-two-pass-dn",
            "cp-drive-up",
            "cp-drive-down",
            "fsm-reset-down",
            "fsm-reset-up",
            "ring-preload-count",
            "switch-matrix-all-zero",
            "switch-matrix-one-hot-sweep",
            "bist-lock",
            "cp-bist-window",
            "retimed-data-check",
        ] {
            assert!(names.contains(&required), "missing step {required}");
        }
    }

    #[test]
    fn total_time_is_tens_of_microseconds() {
        let t = prog().total_duration();
        assert!(t.us() > 5.0 && t.us() < 500.0, "total {t}");
    }

    #[test]
    fn bist_dominates_nothing_scan_dominates() {
        // Scan shifting is the expensive part; the BIST is just 2 us + a
        // short observation window.
        let p = prog();
        let scan: Sec = p.tier_steps(Tier::Scan).iter().map(|s| s.duration).sum();
        let bist: Sec = p.tier_steps(Tier::Bist).iter().map(|s| s.duration).sum();
        assert!(scan.value() > bist.value());
    }

    #[test]
    fn render_is_complete_and_grouped() {
        let r = prog().render();
        assert!(r.contains("== DC tier =="));
        assert!(r.contains("== scan tier =="));
        assert!(r.contains("== BIST tier =="));
        assert!(r.contains("total estimated test time"));
        // Every step appears numbered.
        assert!(r.contains("16."));
    }
}
