//! Tier-signature fault diagnosis.
//!
//! Beyond pass/fail, the *combination* of tiers a die fails narrows the
//! defect down to a circuit region — the paper's tier structure gives
//! this for free. A [`SignatureDictionary`] is built once from the fault
//! campaign (which faults produce which `(DC, scan, BIST)` signature) and
//! then diagnoses failing dies by signature lookup, ranking candidate
//! blocks by fault population.
//!
//! # Examples
//!
//! ```no_run
//! use dft::campaign::FaultCampaign;
//! use dft::diagnosis::{Signature, SignatureDictionary};
//! use msim::params::DesignParams;
//!
//! let result = FaultCampaign::new(&DesignParams::paper()).run();
//! let dict = SignatureDictionary::from_campaign(&result);
//! let diag = dict.diagnose(Signature { dc: false, scan: false, bist: true });
//! assert!(!diag.candidates.is_empty());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use msim::netlist::BlockKind;

use crate::campaign::CampaignResult;

/// A tier pass/fail signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature {
    /// Failed the DC tier.
    pub dc: bool,
    /// Failed the scan tier.
    pub scan: bool,
    /// Failed the BIST tier.
    pub bist: bool,
}

impl Signature {
    /// All eight signatures.
    pub const ALL: [Signature; 8] = {
        let mut out = [Signature {
            dc: false,
            scan: false,
            bist: false,
        }; 8];
        let mut i = 0;
        while i < 8 {
            out[i] = Signature {
                dc: i & 4 != 0,
                scan: i & 2 != 0,
                bist: i & 1 != 0,
            };
            i += 1;
        }
        out
    };

    /// Whether any tier failed.
    pub fn any(&self) -> bool {
        self.dc || self.scan || self.bist
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.dc {
            parts.push("DC");
        }
        if self.scan {
            parts.push("scan");
        }
        if self.bist {
            parts.push("BIST");
        }
        if parts.is_empty() {
            write!(f, "clean")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// A ranked diagnosis for one signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// The observed signature.
    pub signature: Signature,
    /// Candidate blocks, most-populous first, with their fault counts.
    pub candidates: Vec<(BlockKind, usize)>,
}

impl Diagnosis {
    /// The most likely block, if any fault can produce this signature.
    pub fn most_likely(&self) -> Option<BlockKind> {
        self.candidates.first().map(|(b, _)| *b)
    }
}

/// Signature → candidate-block dictionary built from a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureDictionary {
    map: BTreeMap<Signature, BTreeMap<BlockKind, usize>>,
}

impl SignatureDictionary {
    /// Builds the dictionary from campaign records.
    pub fn from_campaign(result: &CampaignResult) -> SignatureDictionary {
        let mut map: BTreeMap<Signature, BTreeMap<BlockKind, usize>> = BTreeMap::new();
        for rec in result.records() {
            let sig = Signature {
                dc: rec.dc,
                scan: rec.scan,
                bist: rec.bist,
            };
            *map.entry(sig)
                .or_default()
                .entry(rec.fault.block)
                .or_insert(0) += 1;
        }
        SignatureDictionary { map }
    }

    /// Diagnoses a failing signature.
    pub fn diagnose(&self, signature: Signature) -> Diagnosis {
        let mut candidates: Vec<(BlockKind, usize)> = self
            .map
            .get(&signature)
            .map(|blocks| blocks.iter().map(|(b, n)| (*b, *n)).collect())
            .unwrap_or_default();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Diagnosis {
            signature,
            candidates,
        }
    }

    /// Diagnostic resolution: the mean number of candidate blocks over the
    /// failing signatures that occur (lower = sharper diagnosis).
    pub fn mean_resolution(&self) -> f64 {
        let failing: Vec<_> = self.map.iter().filter(|(sig, _)| sig.any()).collect();
        if failing.is_empty() {
            return 0.0;
        }
        failing
            .iter()
            .map(|(_, blocks)| blocks.len())
            .sum::<usize>() as f64
            / failing.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::FaultCampaign;
    use msim::params::DesignParams;
    use std::sync::OnceLock;

    fn dict() -> &'static SignatureDictionary {
        static DICT: OnceLock<SignatureDictionary> = OnceLock::new();
        DICT.get_or_init(|| {
            let result = FaultCampaign::new(&DesignParams::paper()).run();
            SignatureDictionary::from_campaign(&result)
        })
    }

    #[test]
    fn bist_only_localizes_to_clock_recovery() {
        let d = dict().diagnose(Signature {
            dc: false,
            scan: false,
            bist: true,
        });
        assert!(!d.candidates.is_empty());
        for (block, _) in &d.candidates {
            assert!(
                matches!(
                    block,
                    BlockKind::Vcdl
                        | BlockKind::WeakChargePump
                        | BlockKind::StrongChargePump
                        | BlockKind::WindowComparator
                ),
                "unexpected BIST-only block {block}"
            );
        }
        // The scan-unreachable analog dominates: either the VCDL or the
        // weak pump's balance arm, depending on netlist populations.
        assert!(matches!(
            d.most_likely(),
            Some(BlockKind::Vcdl | BlockKind::WeakChargePump)
        ));
    }

    #[test]
    fn dc_failing_signatures_point_at_the_datapath() {
        let d = dict().diagnose(Signature {
            dc: true,
            scan: true,
            bist: true,
        });
        let blocks: Vec<BlockKind> = d.candidates.iter().map(|(b, _)| *b).collect();
        assert!(blocks.contains(&BlockKind::TxDriver));
    }

    #[test]
    fn signature_display() {
        assert_eq!(
            format!(
                "{}",
                Signature {
                    dc: true,
                    scan: false,
                    bist: true
                }
            ),
            "DC+BIST"
        );
        assert_eq!(
            format!(
                "{}",
                Signature {
                    dc: false,
                    scan: false,
                    bist: false
                }
            ),
            "clean"
        );
    }

    #[test]
    fn all_signatures_enumerated() {
        assert_eq!(Signature::ALL.len(), 8);
        let any: Vec<_> = Signature::ALL.iter().filter(|s| s.any()).collect();
        assert_eq!(any.len(), 7);
    }

    #[test]
    fn unknown_signature_yields_empty_diagnosis() {
        // DC-only failures do not occur in this design (everything the DC
        // test sees, the toggling scan check sees too).
        let d = dict().diagnose(Signature {
            dc: true,
            scan: false,
            bist: false,
        });
        assert!(d.candidates.is_empty());
        assert_eq!(d.most_likely(), None);
    }

    #[test]
    fn resolution_is_sharp() {
        // On average a failing signature narrows to a handful of blocks
        // out of seven.
        let r = dict().mean_resolution();
        assert!(r > 0.0 && r < 5.0, "resolution {r}");
    }
}
