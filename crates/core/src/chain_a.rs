//! Scan chain A as one stitched gate-level circuit.
//!
//! The paper's data-path chain: transmitter data flip-flop, the DFT
//! half-cycle latch (transparent in mission mode), the probe flip-flops on
//! the FFE capacitor plates, then — across the interconnect — the
//! Alexander phase detector and the domain-crossing retimer with its
//! `φRx`/`φ̄Rx` select (which, per the paper, lengthens the chain by one
//! flip-flop when `φ̄Rx` is chosen).
//!
//! The analog line in the middle is abstracted to a configurable
//! propagation of the TX bit to the PD samplers (healthy, stuck, or
//! half-cycle-delayed), which is exactly what the digital chain observes.
//! On top of it the paper's **two-pass phase-detector test** runs at gate
//! level: at scan frequency the PD asserts UP constantly; enabling the TX
//! half-cycle latch flips it to DN — both decision paths verified.
//!
//! # Examples
//!
//! ```
//! use dft::chain_a::ChainA;
//!
//! let chain = ChainA::new();
//! let report = chain.run_pd_two_pass_test();
//! assert!(report.pass());
//! ```

use dsim::circuit::{Circuit, GateKind, NetId, SimState};
use dsim::logic::Logic;
use dsim::scan::chain_continuity;

/// Outcome of the paper's two-pass UP/DN phase-detector test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdTwoPassReport {
    /// UP assertions observed in pass 1 (latch transparent).
    pub pass1_up: u32,
    /// DN assertions observed in pass 1.
    pub pass1_dn: u32,
    /// UP assertions observed in pass 2 (half-cycle latch enabled).
    pub pass2_up: u32,
    /// DN assertions observed in pass 2.
    pub pass2_dn: u32,
}

impl PdTwoPassReport {
    /// Pass 1 must be UP-dominated and pass 2 DN-dominated.
    pub fn pass(&self) -> bool {
        self.pass1_up > 3 * self.pass1_dn.max(1) && self.pass2_dn > 3 * self.pass2_up.max(1)
    }
}

/// The stitched data-path scan chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainA {
    circuit: Circuit,
    data_in: NetId,
    latch_enable: NetId,
    line_ok: NetId,
    up: NetId,
    dn: NetId,
    retimed: NetId,
}

impl ChainA {
    /// Builds the chain.
    ///
    /// Flip-flop (scan) order matches the paper: TX data FF, half-cycle
    /// stage, the four probe FFs, PD samplers (data, previous, edge), PD
    /// output FFs, retimer.
    pub fn new() -> ChainA {
        let mut c = Circuit::new("scan-chain-a");
        let data_in = c.input("data");
        // `Ten`-controlled half-cycle delay enable.
        let latch_enable = c.input("latch_enable");
        // Abstraction of the analog line: 1 = propagates, 0 = line dead
        // (a gross analog fault breaks the chain's data flow).
        let line_ok = c.input("line_ok");

        // TX data flip-flop.
        let q_tx = c.net("q_tx");
        c.dff(data_in, q_tx);

        // Half-cycle latch: behaviorally one extra stage selected by
        // latch_enable (transparent in mission mode).
        let q_half = c.net("q_half");
        c.dff(q_tx, q_half);
        let tx_out = c.net("tx_out");
        c.gate(GateKind::Mux, &[latch_enable, q_tx, q_half], tx_out);

        // Probe flip-flops on the FFE plates: observe the driven value.
        let probes: Vec<NetId> = (0..4)
            .map(|i| {
                let q = c.net(format!("q_probe{i}"));
                c.dff(tx_out, q);
                c.output(q);
                q
            })
            .collect();
        let _ = probes;

        // The line: the PD's data sampler sees tx_out when the line is
        // healthy; a dead line pins it low.
        let line_out = c.net("line_out");
        c.gate(GateKind::And, &[tx_out, line_ok], line_out);
        // The edge sampler sees the *undelayed* TX bit (the half-UI-early
        // sample): with the latch transparent it equals the new bit (UP);
        // with the latch enabled it sees the not-yet-delayed value — the
        // old bit at the line (DN). Model: edge sample taps q_tx while the
        // data sample taps the (possibly latched) line.
        let edge_in = c.net("edge_in");
        c.gate(GateKind::And, &[q_tx, line_ok], edge_in);

        // Alexander PD (same structure as dsim::blocks::alexander).
        let q_b = c.net("q_b");
        let q_a = c.net("q_a");
        let q_t = c.net("q_t");
        c.dff(line_out, q_b);
        c.dff(q_b, q_a);
        c.dff(edge_in, q_t);
        let up = c.net("up");
        c.gate(GateKind::Xor, &[q_a, q_t], up);
        let dn = c.net("dn");
        c.gate(GateKind::Xor, &[q_t, q_b], dn);
        c.output(up);
        c.output(dn);

        // Domain-crossing retimer.
        let retimed = c.net("retimed");
        c.dff(q_b, retimed);
        c.output(retimed);

        ChainA {
            circuit: c,
            data_in,
            latch_enable,
            line_ok,
            up,
            dn,
            retimed,
        }
    }

    /// The stitched circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Runs one pass of the PD test: a toggling pattern at scan frequency
    /// with the half-cycle latch on or off; returns `(up, dn)` counts.
    fn pd_pass(&self, latch: bool, cycles: u32) -> (u32, u32) {
        let mut s = SimState::for_circuit(&self.circuit);
        s.load_ffs(&vec![Logic::Zero; self.circuit.dff_count()]);
        s.set_input(&self.circuit, self.latch_enable, Logic::from_bool(latch));
        s.set_input(&self.circuit, self.line_ok, Logic::One);
        let mut bit = false;
        let (mut ups, mut dns) = (0, 0);
        for _ in 0..cycles {
            bit = !bit;
            s.set_input(&self.circuit, self.data_in, Logic::from_bool(bit));
            self.circuit.tick(&mut s);
            if s.net(self.up) == Logic::One {
                ups += 1;
            }
            if s.net(self.dn) == Logic::One {
                dns += 1;
            }
        }
        (ups, dns)
    }

    /// The paper's §II.A two-pass test: pass 1 with the latch transparent
    /// (PD must assert UP), pass 2 with the half-cycle delay enabled (PD
    /// must assert DN).
    pub fn run_pd_two_pass_test(&self) -> PdTwoPassReport {
        let (pass1_up, pass1_dn) = self.pd_pass(false, 32);
        let (pass2_up, pass2_dn) = self.pd_pass(true, 32);
        PdTwoPassReport {
            pass1_up,
            pass1_dn,
            pass2_up,
            pass2_dn,
        }
    }

    /// Chain continuity (the check the switch-matrix test relies on: a
    /// deselected clock stops the chain, a healthy one flushes it).
    pub fn run_continuity_test(&self) -> bool {
        let mut s = SimState::for_circuit(&self.circuit);
        s.load_ffs(&vec![Logic::Zero; self.circuit.dff_count()]);
        chain_continuity(&self.circuit, &mut s)
    }

    /// End-to-end data propagation through the retimer with a given line
    /// condition: sends an alternating pattern and returns `true` when the
    /// retimed output reproduces it (with latency).
    pub fn run_datapath_test(&self, line_ok: bool) -> bool {
        let mut s = SimState::for_circuit(&self.circuit);
        s.load_ffs(&vec![Logic::Zero; self.circuit.dff_count()]);
        s.set_input(&self.circuit, self.latch_enable, Logic::Zero);
        s.set_input(&self.circuit, self.line_ok, Logic::from_bool(line_ok));
        let mut sent = Vec::new();
        let mut got = Vec::new();
        let mut bit = false;
        for _ in 0..24 {
            bit = !bit;
            sent.push(bit);
            s.set_input(&self.circuit, self.data_in, Logic::from_bool(bit));
            self.circuit.tick(&mut s);
            got.push(s.net(self.retimed) == Logic::One);
        }
        // Find the pipeline latency and compare.
        (1..8).any(|lat| sent[..sent.len() - lat] == got[lat..])
    }
}

impl Default for ChainA {
    fn default() -> ChainA {
        ChainA::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsim::atpg::random_vectors;
    use dsim::stuck_at::scan_coverage;

    #[test]
    fn two_pass_pd_test_matches_paper() {
        // §II.A: "When the link is operated at the scan frequency, the
        // phase detector always asserts the UP signal. To test the other
        // signal path, the half cycle delay at the transmitter side is
        // enabled, which makes the phase detector assert the DN signal."
        let chain = ChainA::new();
        let r = chain.run_pd_two_pass_test();
        assert!(r.pass(), "{r:?}");
        assert!(r.pass1_up > 20 && r.pass1_dn == 0, "{r:?}");
        // One startup transient is allowed while the samplers fill.
        assert!(r.pass2_dn > 20 && r.pass2_up <= 1, "{r:?}");
    }

    #[test]
    fn continuity_holds_on_healthy_chain() {
        assert!(ChainA::new().run_continuity_test());
    }

    #[test]
    fn datapath_propagates_when_line_healthy() {
        let chain = ChainA::new();
        assert!(chain.run_datapath_test(true));
        // A dead line breaks the retimed-data comparison.
        assert!(!chain.run_datapath_test(false));
    }

    #[test]
    fn chain_length_matches_paper_inventory() {
        // TX FF + half-cycle stage + 4 probes + 3 PD samplers + retimer.
        let chain = ChainA::new();
        assert_eq!(chain.circuit().dff_count(), 10);
    }

    #[test]
    fn composite_reaches_full_stuck_at_coverage() {
        let chain = ChainA::new();
        let vectors = random_vectors(chain.circuit(), 256, 37);
        let cov = scan_coverage(chain.circuit(), &vectors);
        assert!(
            (cov.coverage() - 1.0).abs() < 1e-12,
            "undetected: {:?}",
            cov.undetected()
        );
    }
}
