//! Plain-text table rendering shared by the experiment binaries.
//!
//! # Examples
//!
//! ```
//! use dft::report::{render_table, percent};
//!
//! let t = render_table(
//!     &["Defect", "Coverage"],
//!     &[vec!["Gate open".into(), percent(0.878)]],
//! );
//! assert!(t.contains("87.8 %"));
//! ```

/// Formats a fraction as `"87.8 %"`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1} %", fraction * 100.0)
}

/// Renders an ASCII table with a header row and column-width alignment.
///
/// # Panics
///
/// Panics if any row's cell count differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let rule = |s: &mut String| {
        for w in &widths {
            s.push('+');
            s.push_str(&"-".repeat(w + 2));
        }
        s.push_str("+\n");
    };
    let line = |s: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("| {:<w$} ", cell, w = widths[i]));
        }
        s.push_str("|\n");
    };
    let mut out = String::new();
    rule(&mut out);
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    rule(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    rule(&mut out);
    let _ = ncols;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.504), "50.4 %");
        assert_eq!(percent(1.0), "100.0 %");
        assert_eq!(percent(0.0), "0.0 %");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Entity", "Number"],
            &[
                vec!["Flip-flop".into(), "7".into()],
                vec!["Comparators (DC)".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // Rule, header, rule, 2 rows, rule.
        assert_eq!(lines.len(), 6);
        // All lines the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
        assert!(t.contains("| Flip-flop"));
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
