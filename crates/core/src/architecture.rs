//! The testable link architecture (Fig. 1).
//!
//! Assembles the functional blocks, the DFT additions and the two scan
//! chains the paper describes:
//!
//! * **Scan chain A** (data path, transmitter clock domain): TX data
//!   flip-flops → FFE-plate probe flip-flops → across the interconnect →
//!   the Alexander phase detector's flip-flops → the retimer. Its output
//!   is the retimed data.
//! * **Scan chain B** (clock control path, receiver divided-clock domain):
//!   window-comparator capture flip-flops → charge-pump control → control
//!   FSM → UP/DN ring counter → lock detector.
//!
//! The struct also owns the gate-level digital blocks so the digital
//! stuck-at story (100 % coverage) can be demonstrated on the very same
//! circuits that are stitched into chain B.
//!
//! # Examples
//!
//! ```
//! use dft::architecture::TestableLink;
//!
//! let link = TestableLink::paper();
//! assert_eq!(link.scan_chain_a().len(), 9);
//! assert!(link.fault_universe().len() > 500);
//! ```

use dsim::blocks::alexander::AlexanderPd;
use dsim::blocks::divider::Divider;
use dsim::blocks::fsm::ControlFsm;
use dsim::blocks::lock_counter::LockCounter;
use dsim::blocks::ring_counter::RingCounter;
use dsim::blocks::switch_matrix::SwitchMatrix;
use link::netlists::{functional_netlists, test_circuit_netlists};
use msim::fault::FaultUniverse;
use msim::netlist::{BlockKind, Netlist};
use msim::params::DesignParams;

use crate::overhead::DftOverhead;

/// One element of a scan chain description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainElement {
    /// Element name.
    pub name: &'static str,
    /// What it is / what it observes.
    pub role: &'static str,
}

/// The assembled testable link.
#[derive(Debug)]
pub struct TestableLink {
    params: DesignParams,
    blocks: Vec<(BlockKind, Netlist)>,
    test_blocks: Vec<(BlockKind, Netlist)>,
    overhead: DftOverhead,
    ring_counter: RingCounter,
    switch_matrix: SwitchMatrix,
    divider: Divider,
    lock_detector: LockCounter,
    control_fsm: ControlFsm,
    phase_detector: AlexanderPd,
}

impl TestableLink {
    /// Builds the paper's design.
    pub fn paper() -> TestableLink {
        let params = DesignParams::paper();
        TestableLink {
            ring_counter: RingCounter::new(params.dll_phases),
            switch_matrix: SwitchMatrix::new(params.dll_phases),
            divider: Divider::new(params.divider_ratio.ilog2() as usize),
            lock_detector: LockCounter::new(3),
            control_fsm: ControlFsm::new(),
            phase_detector: AlexanderPd::new(),
            blocks: functional_netlists(),
            test_blocks: test_circuit_netlists(),
            overhead: DftOverhead::paper(),
            params,
        }
    }

    /// The design point.
    pub fn params(&self) -> &DesignParams {
        &self.params
    }

    /// The functional analog blocks.
    pub fn blocks(&self) -> &[(BlockKind, Netlist)] {
        &self.blocks
    }

    /// The DFT test-circuitry blocks.
    pub fn test_blocks(&self) -> &[(BlockKind, Netlist)] {
        &self.test_blocks
    }

    /// The added-circuitry inventory (Table II).
    pub fn overhead(&self) -> &DftOverhead {
        &self.overhead
    }

    /// The gate-level UP/DN ring counter.
    pub fn ring_counter(&self) -> &RingCounter {
        &self.ring_counter
    }

    /// The gate-level switch matrix.
    pub fn switch_matrix(&self) -> &SwitchMatrix {
        &self.switch_matrix
    }

    /// The gate-level coarse-loop divider.
    pub fn divider(&self) -> &Divider {
        &self.divider
    }

    /// The gate-level lock detector.
    pub fn lock_detector(&self) -> &LockCounter {
        &self.lock_detector
    }

    /// The gate-level control FSM.
    pub fn control_fsm(&self) -> &ControlFsm {
        &self.control_fsm
    }

    /// The gate-level Alexander phase detector.
    pub fn phase_detector(&self) -> &AlexanderPd {
        &self.phase_detector
    }

    /// The functional structural fault universe.
    pub fn fault_universe(&self) -> FaultUniverse {
        FaultUniverse::enumerate(self.blocks.iter().map(|(b, n)| (*b, n)))
    }

    /// Scan chain A (data path) in shift order.
    pub fn scan_chain_a(&self) -> Vec<ChainElement> {
        vec![
            ChainElement {
                name: "FF_TXDATA",
                role: "transmitter data flip-flop",
            },
            ChainElement {
                name: "LAT_HALF",
                role: "half-cycle test latch (transparent in mission mode)",
            },
            ChainElement {
                name: "FF_CSP+",
                role: "Cs driver-plate probe, plus arm",
            },
            ChainElement {
                name: "FF_CSA+",
                role: "aCs driver-plate probe, plus arm",
            },
            ChainElement {
                name: "FF_CSP-",
                role: "Cs driver-plate probe, minus arm",
            },
            ChainElement {
                name: "FF_CSA-",
                role: "aCs driver-plate probe, minus arm",
            },
            ChainElement {
                name: "PD_SAMPLERS",
                role: "Alexander PD data/edge samplers (across the interconnect)",
            },
            ChainElement {
                name: "PD_DECISION",
                role: "Alexander PD UP/DN flip-flops",
            },
            ChainElement {
                name: "FF_RETIME",
                role: "domain-crossing retimer (phi_Rx or phi_Rx-bar)",
            },
        ]
    }

    /// Scan chain B (clock control path) in shift order.
    pub fn scan_chain_b(&self) -> Vec<ChainElement> {
        vec![
            ChainElement {
                name: "FF_WINH",
                role: "VH window-comparator capture",
            },
            ChainElement {
                name: "FF_WINL",
                role: "VL window-comparator capture",
            },
            ChainElement {
                name: "CP_CTRL",
                role: "charge pumps as combinational elements (biases railed)",
            },
            ChainElement {
                name: "FSM",
                role: "coarse-correction control FSM state",
            },
            ChainElement {
                name: "RING_COUNTER",
                role: "UP/DN one-hot ring counter (DLL phase select)",
            },
            ChainElement {
                name: "LOCK_DETECTOR",
                role: "3-bit saturating lock detector",
            },
        ]
    }

    /// Human-readable inventory of the whole design: functional blocks
    /// with their device counts, DFT blocks, scan-chain ordering and the
    /// Table II overhead — the content behind the paper's Fig. 1.
    pub fn inventory(&self) -> String {
        let mut s = String::new();
        s.push_str("Functional analog blocks (structural fault universe):\n");
        for (b, nl) in &self.blocks {
            s.push_str(&format!(
                "  {:<22} {:>3} MOS {:>2} caps\n",
                b.label(),
                nl.mos_count(),
                nl.capacitor_count()
            ));
        }
        s.push_str("DFT test circuitry (excluded from the universe):\n");
        for (b, nl) in &self.test_blocks {
            s.push_str(&format!(
                "  {:<22} {:>3} MOS {:>2} caps\n",
                b.label(),
                nl.mos_count(),
                nl.capacitor_count()
            ));
        }
        s.push_str("Digital blocks (gate level, 100 % stuck-at via scan):\n");
        for (name, gates, ffs) in [
            (
                "ring counter",
                self.ring_counter.circuit().gate_count(),
                self.ring_counter.circuit().dff_count(),
            ),
            (
                "switch matrix",
                self.switch_matrix.circuit().gate_count(),
                self.switch_matrix.circuit().dff_count(),
            ),
            (
                "divider",
                self.divider.circuit().gate_count(),
                self.divider.circuit().dff_count(),
            ),
            (
                "lock detector",
                self.lock_detector.circuit().gate_count(),
                self.lock_detector.circuit().dff_count(),
            ),
            (
                "control FSM",
                self.control_fsm.circuit().gate_count(),
                self.control_fsm.circuit().dff_count(),
            ),
            (
                "Alexander PD",
                self.phase_detector.circuit().gate_count(),
                self.phase_detector.circuit().dff_count(),
            ),
        ] {
            s.push_str(&format!("  {name:<22} {gates:>3} gates {ffs:>2} FFs\n"));
        }
        s.push_str("Scan chain A (data path):\n");
        for e in self.scan_chain_a() {
            s.push_str(&format!("  {:<14} {}\n", e.name, e.role));
        }
        s.push_str("Scan chain B (clock control path):\n");
        for e in self.scan_chain_b() {
            s.push_str(&format!("  {:<14} {}\n", e.name, e.role));
        }
        s.push_str("DFT overhead (Table II):\n");
        for (label, n) in self.overhead.table_rows() {
            s.push_str(&format!("  {label:<30} {n}\n"));
        }
        s
    }
}

impl Default for TestableLink {
    fn default() -> TestableLink {
        TestableLink::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_a_starts_at_tx_and_ends_at_retimer() {
        // The paper: "the data path scan chain begins at the transmitter,
        // goes through the interconnect and the phase detector".
        let link = TestableLink::paper();
        let chain = link.scan_chain_a();
        assert_eq!(chain.first().unwrap().name, "FF_TXDATA");
        assert_eq!(chain.last().unwrap().name, "FF_RETIME");
        assert!(chain.iter().any(|e| e.name == "PD_DECISION"));
    }

    #[test]
    fn chain_b_starts_at_window_comparator_and_ends_at_lock_detector() {
        // The paper: "the clock control path scan chain begins at the
        // window comparator ... and finally the lock detector block".
        let link = TestableLink::paper();
        let chain = link.scan_chain_b();
        assert_eq!(chain.first().unwrap().name, "FF_WINH");
        assert_eq!(chain.last().unwrap().name, "LOCK_DETECTOR");
    }

    #[test]
    fn probe_ffs_cover_all_capacitor_plates() {
        let link = TestableLink::paper();
        let probes: Vec<&str> = link
            .scan_chain_a()
            .iter()
            .filter(|e| e.name.starts_with("FF_CS"))
            .map(|e| e.name)
            .collect();
        // Two capacitors per arm, two arms.
        assert_eq!(probes.len(), 4);
    }

    #[test]
    fn digital_blocks_sized_from_params() {
        let link = TestableLink::paper();
        assert_eq!(link.ring_counter().len(), 10);
        assert_eq!(link.switch_matrix().len(), 10);
        // Divider ratio 16 = 2^4 stages.
        assert_eq!(link.divider().circuit().dff_count(), 4);
        assert_eq!(link.lock_detector().circuit().dff_count(), 3);
        let _ = link.control_fsm();
        let _ = link.phase_detector();
    }

    #[test]
    fn inventory_mentions_every_block() {
        let link = TestableLink::paper();
        let inv = link.inventory();
        for (b, _) in link.blocks() {
            assert!(inv.contains(b.label()), "inventory missing {b}");
        }
        assert!(inv.contains("Scan chain A"));
        assert!(inv.contains("Table II"));
        assert!(inv.contains("lock detector"));
    }

    #[test]
    fn universe_nonempty_and_consistent() {
        let link = TestableLink::paper();
        let u = link.fault_universe();
        assert_eq!(u.len(), 99 * 6 + 9);
        // Test circuitry must not leak into the universe.
        for f in &u {
            assert!(!f.block.is_test_circuitry());
        }
    }
}
