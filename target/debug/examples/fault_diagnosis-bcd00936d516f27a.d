/root/repo/target/debug/examples/fault_diagnosis-bcd00936d516f27a.d: crates/core/../../examples/fault_diagnosis.rs Cargo.toml

/root/repo/target/debug/examples/libfault_diagnosis-bcd00936d516f27a.rmeta: crates/core/../../examples/fault_diagnosis.rs Cargo.toml

crates/core/../../examples/fault_diagnosis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
