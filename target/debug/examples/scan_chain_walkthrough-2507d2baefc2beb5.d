/root/repo/target/debug/examples/scan_chain_walkthrough-2507d2baefc2beb5.d: crates/core/../../examples/scan_chain_walkthrough.rs

/root/repo/target/debug/examples/scan_chain_walkthrough-2507d2baefc2beb5: crates/core/../../examples/scan_chain_walkthrough.rs

crates/core/../../examples/scan_chain_walkthrough.rs:
