/root/repo/target/debug/examples/production_screening-9dbabc76506da33c.d: crates/core/../../examples/production_screening.rs

/root/repo/target/debug/examples/production_screening-9dbabc76506da33c: crates/core/../../examples/production_screening.rs

crates/core/../../examples/production_screening.rs:
