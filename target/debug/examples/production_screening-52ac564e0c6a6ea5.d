/root/repo/target/debug/examples/production_screening-52ac564e0c6a6ea5.d: crates/core/../../examples/production_screening.rs Cargo.toml

/root/repo/target/debug/examples/libproduction_screening-52ac564e0c6a6ea5.rmeta: crates/core/../../examples/production_screening.rs Cargo.toml

crates/core/../../examples/production_screening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
