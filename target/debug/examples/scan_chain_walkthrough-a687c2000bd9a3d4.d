/root/repo/target/debug/examples/scan_chain_walkthrough-a687c2000bd9a3d4.d: crates/core/../../examples/scan_chain_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libscan_chain_walkthrough-a687c2000bd9a3d4.rmeta: crates/core/../../examples/scan_chain_walkthrough.rs Cargo.toml

crates/core/../../examples/scan_chain_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
