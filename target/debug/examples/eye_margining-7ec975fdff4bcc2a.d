/root/repo/target/debug/examples/eye_margining-7ec975fdff4bcc2a.d: crates/core/../../examples/eye_margining.rs Cargo.toml

/root/repo/target/debug/examples/libeye_margining-7ec975fdff4bcc2a.rmeta: crates/core/../../examples/eye_margining.rs Cargo.toml

crates/core/../../examples/eye_margining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
