/root/repo/target/debug/examples/eye_margining-4916d750001bbcfe.d: crates/core/../../examples/eye_margining.rs

/root/repo/target/debug/examples/eye_margining-4916d750001bbcfe: crates/core/../../examples/eye_margining.rs

crates/core/../../examples/eye_margining.rs:
