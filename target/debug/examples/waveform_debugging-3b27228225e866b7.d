/root/repo/target/debug/examples/waveform_debugging-3b27228225e866b7.d: crates/core/../../examples/waveform_debugging.rs

/root/repo/target/debug/examples/waveform_debugging-3b27228225e866b7: crates/core/../../examples/waveform_debugging.rs

crates/core/../../examples/waveform_debugging.rs:
