/root/repo/target/debug/examples/quickstart-a3a3aebe41d671b4.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a3a3aebe41d671b4: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
