/root/repo/target/debug/examples/waveform_debugging-d76b6a21ff45cb54.d: crates/core/../../examples/waveform_debugging.rs Cargo.toml

/root/repo/target/debug/examples/libwaveform_debugging-d76b6a21ff45cb54.rmeta: crates/core/../../examples/waveform_debugging.rs Cargo.toml

crates/core/../../examples/waveform_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
