/root/repo/target/debug/examples/fault_diagnosis-08359542f7442a4c.d: crates/core/../../examples/fault_diagnosis.rs

/root/repo/target/debug/examples/fault_diagnosis-08359542f7442a4c: crates/core/../../examples/fault_diagnosis.rs

crates/core/../../examples/fault_diagnosis.rs:
