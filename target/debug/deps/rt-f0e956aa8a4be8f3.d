/root/repo/target/debug/deps/rt-f0e956aa8a4be8f3.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/debug/deps/rt-f0e956aa8a4be8f3: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
