/root/repo/target/debug/deps/bathtub-3e50937ba07ba7fa.d: crates/bench/src/bin/bathtub.rs

/root/repo/target/debug/deps/bathtub-3e50937ba07ba7fa: crates/bench/src/bin/bathtub.rs

crates/bench/src/bin/bathtub.rs:
