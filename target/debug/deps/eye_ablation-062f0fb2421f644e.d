/root/repo/target/debug/deps/eye_ablation-062f0fb2421f644e.d: crates/bench/src/bin/eye_ablation.rs

/root/repo/target/debug/deps/eye_ablation-062f0fb2421f644e: crates/bench/src/bin/eye_ablation.rs

crates/bench/src/bin/eye_ablation.rs:
