/root/repo/target/debug/deps/shipped_quality-68b5ecf10cf77e9b.d: crates/bench/src/bin/shipped_quality.rs

/root/repo/target/debug/deps/shipped_quality-68b5ecf10cf77e9b: crates/bench/src/bin/shipped_quality.rs

crates/bench/src/bin/shipped_quality.rs:
