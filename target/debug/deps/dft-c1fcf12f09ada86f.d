/root/repo/target/debug/deps/dft-c1fcf12f09ada86f.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/architecture.rs crates/core/src/bist.rs crates/core/src/campaign.rs crates/core/src/chain_a.rs crates/core/src/chain_b.rs crates/core/src/dc_test.rs crates/core/src/diagnosis.rs crates/core/src/mismatch.rs crates/core/src/multilane.rs crates/core/src/overhead.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/scan_test.rs crates/core/src/test_program.rs Cargo.toml

/root/repo/target/debug/deps/libdft-c1fcf12f09ada86f.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/architecture.rs crates/core/src/bist.rs crates/core/src/campaign.rs crates/core/src/chain_a.rs crates/core/src/chain_b.rs crates/core/src/dc_test.rs crates/core/src/diagnosis.rs crates/core/src/mismatch.rs crates/core/src/multilane.rs crates/core/src/overhead.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/scan_test.rs crates/core/src/test_program.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/architecture.rs:
crates/core/src/bist.rs:
crates/core/src/campaign.rs:
crates/core/src/chain_a.rs:
crates/core/src/chain_b.rs:
crates/core/src/dc_test.rs:
crates/core/src/diagnosis.rs:
crates/core/src/mismatch.rs:
crates/core/src/multilane.rs:
crates/core/src/overhead.rs:
crates/core/src/quality.rs:
crates/core/src/report.rs:
crates/core/src/scan_test.rs:
crates/core/src/test_program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
