/root/repo/target/debug/deps/table2_overhead-fbb92af3a4193610.d: crates/bench/src/bin/table2_overhead.rs

/root/repo/target/debug/deps/table2_overhead-fbb92af3a4193610: crates/bench/src/bin/table2_overhead.rs

crates/bench/src/bin/table2_overhead.rs:
