/root/repo/target/debug/deps/msim-46589af58934570c.d: crates/msim/src/lib.rs crates/msim/src/blocks/mod.rs crates/msim/src/blocks/bias.rs crates/msim/src/blocks/charge_pump.rs crates/msim/src/blocks/comparator.rs crates/msim/src/blocks/dll.rs crates/msim/src/blocks/vcdl.rs crates/msim/src/effects.rs crates/msim/src/fault.rs crates/msim/src/netlist.rs crates/msim/src/params.rs crates/msim/src/signal.rs crates/msim/src/sim.rs crates/msim/src/units.rs crates/msim/src/vcd.rs

/root/repo/target/debug/deps/libmsim-46589af58934570c.rlib: crates/msim/src/lib.rs crates/msim/src/blocks/mod.rs crates/msim/src/blocks/bias.rs crates/msim/src/blocks/charge_pump.rs crates/msim/src/blocks/comparator.rs crates/msim/src/blocks/dll.rs crates/msim/src/blocks/vcdl.rs crates/msim/src/effects.rs crates/msim/src/fault.rs crates/msim/src/netlist.rs crates/msim/src/params.rs crates/msim/src/signal.rs crates/msim/src/sim.rs crates/msim/src/units.rs crates/msim/src/vcd.rs

/root/repo/target/debug/deps/libmsim-46589af58934570c.rmeta: crates/msim/src/lib.rs crates/msim/src/blocks/mod.rs crates/msim/src/blocks/bias.rs crates/msim/src/blocks/charge_pump.rs crates/msim/src/blocks/comparator.rs crates/msim/src/blocks/dll.rs crates/msim/src/blocks/vcdl.rs crates/msim/src/effects.rs crates/msim/src/fault.rs crates/msim/src/netlist.rs crates/msim/src/params.rs crates/msim/src/signal.rs crates/msim/src/sim.rs crates/msim/src/units.rs crates/msim/src/vcd.rs

crates/msim/src/lib.rs:
crates/msim/src/blocks/mod.rs:
crates/msim/src/blocks/bias.rs:
crates/msim/src/blocks/charge_pump.rs:
crates/msim/src/blocks/comparator.rs:
crates/msim/src/blocks/dll.rs:
crates/msim/src/blocks/vcdl.rs:
crates/msim/src/effects.rs:
crates/msim/src/fault.rs:
crates/msim/src/netlist.rs:
crates/msim/src/params.rs:
crates/msim/src/signal.rs:
crates/msim/src/sim.rs:
crates/msim/src/units.rs:
crates/msim/src/vcd.rs:
