/root/repo/target/debug/deps/digital_scan-314f88e8a743a4eb.d: crates/bench/benches/digital_scan.rs Cargo.toml

/root/repo/target/debug/deps/libdigital_scan-314f88e8a743a4eb.rmeta: crates/bench/benches/digital_scan.rs Cargo.toml

crates/bench/benches/digital_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
