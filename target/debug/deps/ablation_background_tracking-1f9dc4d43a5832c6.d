/root/repo/target/debug/deps/ablation_background_tracking-1f9dc4d43a5832c6.d: crates/bench/src/bin/ablation_background_tracking.rs

/root/repo/target/debug/deps/ablation_background_tracking-1f9dc4d43a5832c6: crates/bench/src/bin/ablation_background_tracking.rs

crates/bench/src/bin/ablation_background_tracking.rs:
