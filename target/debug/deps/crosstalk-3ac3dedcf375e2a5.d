/root/repo/target/debug/deps/crosstalk-3ac3dedcf375e2a5.d: crates/bench/src/bin/crosstalk.rs Cargo.toml

/root/repo/target/debug/deps/libcrosstalk-3ac3dedcf375e2a5.rmeta: crates/bench/src/bin/crosstalk.rs Cargo.toml

crates/bench/src/bin/crosstalk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
