/root/repo/target/debug/deps/corner_sweep-4e8d4d6877dedeb3.d: crates/bench/src/bin/corner_sweep.rs

/root/repo/target/debug/deps/corner_sweep-4e8d4d6877dedeb3: crates/bench/src/bin/corner_sweep.rs

crates/bench/src/bin/corner_sweep.rs:
