/root/repo/target/debug/deps/bist_lock_time-48c92abd72264372.d: crates/bench/src/bin/bist_lock_time.rs Cargo.toml

/root/repo/target/debug/deps/libbist_lock_time-48c92abd72264372.rmeta: crates/bench/src/bin/bist_lock_time.rs Cargo.toml

crates/bench/src/bin/bist_lock_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
