/root/repo/target/debug/deps/dsim-3e7996879a4a61e9.d: crates/dsim/src/lib.rs crates/dsim/src/atpg.rs crates/dsim/src/blocks/mod.rs crates/dsim/src/blocks/alexander.rs crates/dsim/src/blocks/divider.rs crates/dsim/src/blocks/fsm.rs crates/dsim/src/blocks/lock_counter.rs crates/dsim/src/blocks/ring_counter.rs crates/dsim/src/blocks/switch_matrix.rs crates/dsim/src/circuit.rs crates/dsim/src/collapse.rs crates/dsim/src/logic.rs crates/dsim/src/podem.rs crates/dsim/src/scan.rs crates/dsim/src/stuck_at.rs crates/dsim/src/transition.rs crates/dsim/src/waves.rs Cargo.toml

/root/repo/target/debug/deps/libdsim-3e7996879a4a61e9.rmeta: crates/dsim/src/lib.rs crates/dsim/src/atpg.rs crates/dsim/src/blocks/mod.rs crates/dsim/src/blocks/alexander.rs crates/dsim/src/blocks/divider.rs crates/dsim/src/blocks/fsm.rs crates/dsim/src/blocks/lock_counter.rs crates/dsim/src/blocks/ring_counter.rs crates/dsim/src/blocks/switch_matrix.rs crates/dsim/src/circuit.rs crates/dsim/src/collapse.rs crates/dsim/src/logic.rs crates/dsim/src/podem.rs crates/dsim/src/scan.rs crates/dsim/src/stuck_at.rs crates/dsim/src/transition.rs crates/dsim/src/waves.rs Cargo.toml

crates/dsim/src/lib.rs:
crates/dsim/src/atpg.rs:
crates/dsim/src/blocks/mod.rs:
crates/dsim/src/blocks/alexander.rs:
crates/dsim/src/blocks/divider.rs:
crates/dsim/src/blocks/fsm.rs:
crates/dsim/src/blocks/lock_counter.rs:
crates/dsim/src/blocks/ring_counter.rs:
crates/dsim/src/blocks/switch_matrix.rs:
crates/dsim/src/circuit.rs:
crates/dsim/src/collapse.rs:
crates/dsim/src/logic.rs:
crates/dsim/src/podem.rs:
crates/dsim/src/scan.rs:
crates/dsim/src/stuck_at.rs:
crates/dsim/src/transition.rs:
crates/dsim/src/waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
