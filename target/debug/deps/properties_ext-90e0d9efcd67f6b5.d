/root/repo/target/debug/deps/properties_ext-90e0d9efcd67f6b5.d: crates/core/../../tests/properties_ext.rs

/root/repo/target/debug/deps/properties_ext-90e0d9efcd67f6b5: crates/core/../../tests/properties_ext.rs

crates/core/../../tests/properties_ext.rs:
