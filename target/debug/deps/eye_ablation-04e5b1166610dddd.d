/root/repo/target/debug/deps/eye_ablation-04e5b1166610dddd.d: crates/bench/src/bin/eye_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libeye_ablation-04e5b1166610dddd.rmeta: crates/bench/src/bin/eye_ablation.rs Cargo.toml

crates/bench/src/bin/eye_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
