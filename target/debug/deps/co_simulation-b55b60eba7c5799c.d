/root/repo/target/debug/deps/co_simulation-b55b60eba7c5799c.d: crates/core/../../tests/co_simulation.rs

/root/repo/target/debug/deps/co_simulation-b55b60eba7c5799c: crates/core/../../tests/co_simulation.rs

crates/core/../../tests/co_simulation.rs:
