/root/repo/target/debug/deps/coverage_progression-77a9fbb62799f8f9.d: crates/bench/src/bin/coverage_progression.rs Cargo.toml

/root/repo/target/debug/deps/libcoverage_progression-77a9fbb62799f8f9.rmeta: crates/bench/src/bin/coverage_progression.rs Cargo.toml

crates/bench/src/bin/coverage_progression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
