/root/repo/target/debug/deps/dsim-ee3d4106f5147bba.d: crates/dsim/src/lib.rs crates/dsim/src/atpg.rs crates/dsim/src/blocks/mod.rs crates/dsim/src/blocks/alexander.rs crates/dsim/src/blocks/divider.rs crates/dsim/src/blocks/fsm.rs crates/dsim/src/blocks/lock_counter.rs crates/dsim/src/blocks/ring_counter.rs crates/dsim/src/blocks/switch_matrix.rs crates/dsim/src/circuit.rs crates/dsim/src/collapse.rs crates/dsim/src/logic.rs crates/dsim/src/podem.rs crates/dsim/src/scan.rs crates/dsim/src/stuck_at.rs crates/dsim/src/transition.rs crates/dsim/src/waves.rs

/root/repo/target/debug/deps/libdsim-ee3d4106f5147bba.rlib: crates/dsim/src/lib.rs crates/dsim/src/atpg.rs crates/dsim/src/blocks/mod.rs crates/dsim/src/blocks/alexander.rs crates/dsim/src/blocks/divider.rs crates/dsim/src/blocks/fsm.rs crates/dsim/src/blocks/lock_counter.rs crates/dsim/src/blocks/ring_counter.rs crates/dsim/src/blocks/switch_matrix.rs crates/dsim/src/circuit.rs crates/dsim/src/collapse.rs crates/dsim/src/logic.rs crates/dsim/src/podem.rs crates/dsim/src/scan.rs crates/dsim/src/stuck_at.rs crates/dsim/src/transition.rs crates/dsim/src/waves.rs

/root/repo/target/debug/deps/libdsim-ee3d4106f5147bba.rmeta: crates/dsim/src/lib.rs crates/dsim/src/atpg.rs crates/dsim/src/blocks/mod.rs crates/dsim/src/blocks/alexander.rs crates/dsim/src/blocks/divider.rs crates/dsim/src/blocks/fsm.rs crates/dsim/src/blocks/lock_counter.rs crates/dsim/src/blocks/ring_counter.rs crates/dsim/src/blocks/switch_matrix.rs crates/dsim/src/circuit.rs crates/dsim/src/collapse.rs crates/dsim/src/logic.rs crates/dsim/src/podem.rs crates/dsim/src/scan.rs crates/dsim/src/stuck_at.rs crates/dsim/src/transition.rs crates/dsim/src/waves.rs

crates/dsim/src/lib.rs:
crates/dsim/src/atpg.rs:
crates/dsim/src/blocks/mod.rs:
crates/dsim/src/blocks/alexander.rs:
crates/dsim/src/blocks/divider.rs:
crates/dsim/src/blocks/fsm.rs:
crates/dsim/src/blocks/lock_counter.rs:
crates/dsim/src/blocks/ring_counter.rs:
crates/dsim/src/blocks/switch_matrix.rs:
crates/dsim/src/circuit.rs:
crates/dsim/src/collapse.rs:
crates/dsim/src/logic.rs:
crates/dsim/src/podem.rs:
crates/dsim/src/scan.rs:
crates/dsim/src/stuck_at.rs:
crates/dsim/src/transition.rs:
crates/dsim/src/waves.rs:
