/root/repo/target/debug/deps/table1_fault_coverage-2f01e747739d538d.d: crates/bench/src/bin/table1_fault_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_fault_coverage-2f01e747739d538d.rmeta: crates/bench/src/bin/table1_fault_coverage.rs Cargo.toml

crates/bench/src/bin/table1_fault_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
