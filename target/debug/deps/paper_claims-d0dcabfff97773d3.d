/root/repo/target/debug/deps/paper_claims-d0dcabfff97773d3.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d0dcabfff97773d3: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
