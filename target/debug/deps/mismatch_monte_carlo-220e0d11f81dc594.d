/root/repo/target/debug/deps/mismatch_monte_carlo-220e0d11f81dc594.d: crates/bench/src/bin/mismatch_monte_carlo.rs

/root/repo/target/debug/deps/mismatch_monte_carlo-220e0d11f81dc594: crates/bench/src/bin/mismatch_monte_carlo.rs

crates/bench/src/bin/mismatch_monte_carlo.rs:
