/root/repo/target/debug/deps/dll_bist_check-787b89574d260bbd.d: crates/bench/src/bin/dll_bist_check.rs Cargo.toml

/root/repo/target/debug/deps/libdll_bist_check-787b89574d260bbd.rmeta: crates/bench/src/bin/dll_bist_check.rs Cargo.toml

crates/bench/src/bin/dll_bist_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
