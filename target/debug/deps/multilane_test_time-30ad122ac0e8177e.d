/root/repo/target/debug/deps/multilane_test_time-30ad122ac0e8177e.d: crates/bench/src/bin/multilane_test_time.rs Cargo.toml

/root/repo/target/debug/deps/libmultilane_test_time-30ad122ac0e8177e.rmeta: crates/bench/src/bin/multilane_test_time.rs Cargo.toml

crates/bench/src/bin/multilane_test_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
