/root/repo/target/debug/deps/ablation_fine_loop-1655d1ce41b7ea0c.d: crates/bench/src/bin/ablation_fine_loop.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fine_loop-1655d1ce41b7ea0c.rmeta: crates/bench/src/bin/ablation_fine_loop.rs Cargo.toml

crates/bench/src/bin/ablation_fine_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
