/root/repo/target/debug/deps/fig2_lock_acquisition-0dda0c3b86404371.d: crates/bench/src/bin/fig2_lock_acquisition.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_lock_acquisition-0dda0c3b86404371.rmeta: crates/bench/src/bin/fig2_lock_acquisition.rs Cargo.toml

crates/bench/src/bin/fig2_lock_acquisition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
