/root/repo/target/debug/deps/multilane_test_time-fbc16f582a845ed5.d: crates/bench/src/bin/multilane_test_time.rs Cargo.toml

/root/repo/target/debug/deps/libmultilane_test_time-fbc16f582a845ed5.rmeta: crates/bench/src/bin/multilane_test_time.rs Cargo.toml

crates/bench/src/bin/multilane_test_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
