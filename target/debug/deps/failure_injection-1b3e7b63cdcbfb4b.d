/root/repo/target/debug/deps/failure_injection-1b3e7b63cdcbfb4b.d: crates/core/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-1b3e7b63cdcbfb4b: crates/core/../../tests/failure_injection.rs

crates/core/../../tests/failure_injection.rs:
