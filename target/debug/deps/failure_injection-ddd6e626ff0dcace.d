/root/repo/target/debug/deps/failure_injection-ddd6e626ff0dcace.d: crates/core/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-ddd6e626ff0dcace.rmeta: crates/core/../../tests/failure_injection.rs Cargo.toml

crates/core/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
