/root/repo/target/debug/deps/ablation_dft_elements-bbedce513da28838.d: crates/bench/src/bin/ablation_dft_elements.rs

/root/repo/target/debug/deps/ablation_dft_elements-bbedce513da28838: crates/bench/src/bin/ablation_dft_elements.rs

crates/bench/src/bin/ablation_dft_elements.rs:
