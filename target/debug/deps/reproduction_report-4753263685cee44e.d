/root/repo/target/debug/deps/reproduction_report-4753263685cee44e.d: crates/bench/src/bin/reproduction_report.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction_report-4753263685cee44e.rmeta: crates/bench/src/bin/reproduction_report.rs Cargo.toml

crates/bench/src/bin/reproduction_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
