/root/repo/target/debug/deps/bist_lock_time-8f4fdb3642af9bbd.d: crates/bench/src/bin/bist_lock_time.rs

/root/repo/target/debug/deps/bist_lock_time-8f4fdb3642af9bbd: crates/bench/src/bin/bist_lock_time.rs

crates/bench/src/bin/bist_lock_time.rs:
