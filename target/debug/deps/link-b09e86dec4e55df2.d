/root/repo/target/debug/deps/link-b09e86dec4e55df2.d: crates/link/src/lib.rs crates/link/src/ber.rs crates/link/src/channel.rs crates/link/src/config.rs crates/link/src/crossing.rs crates/link/src/dll_bist.rs crates/link/src/eye.rs crates/link/src/netlists.rs crates/link/src/pd.rs crates/link/src/power.rs crates/link/src/prbs.rs crates/link/src/rx.rs crates/link/src/synchronizer.rs crates/link/src/tx.rs Cargo.toml

/root/repo/target/debug/deps/liblink-b09e86dec4e55df2.rmeta: crates/link/src/lib.rs crates/link/src/ber.rs crates/link/src/channel.rs crates/link/src/config.rs crates/link/src/crossing.rs crates/link/src/dll_bist.rs crates/link/src/eye.rs crates/link/src/netlists.rs crates/link/src/pd.rs crates/link/src/power.rs crates/link/src/prbs.rs crates/link/src/rx.rs crates/link/src/synchronizer.rs crates/link/src/tx.rs Cargo.toml

crates/link/src/lib.rs:
crates/link/src/ber.rs:
crates/link/src/channel.rs:
crates/link/src/config.rs:
crates/link/src/crossing.rs:
crates/link/src/dll_bist.rs:
crates/link/src/eye.rs:
crates/link/src/netlists.rs:
crates/link/src/pd.rs:
crates/link/src/power.rs:
crates/link/src/prbs.rs:
crates/link/src/rx.rs:
crates/link/src/synchronizer.rs:
crates/link/src/tx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
