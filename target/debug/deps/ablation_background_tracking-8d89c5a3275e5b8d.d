/root/repo/target/debug/deps/ablation_background_tracking-8d89c5a3275e5b8d.d: crates/bench/src/bin/ablation_background_tracking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_background_tracking-8d89c5a3275e5b8d.rmeta: crates/bench/src/bin/ablation_background_tracking.rs Cargo.toml

crates/bench/src/bin/ablation_background_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
