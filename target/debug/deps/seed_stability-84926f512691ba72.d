/root/repo/target/debug/deps/seed_stability-84926f512691ba72.d: crates/bench/src/bin/seed_stability.rs Cargo.toml

/root/repo/target/debug/deps/libseed_stability-84926f512691ba72.rmeta: crates/bench/src/bin/seed_stability.rs Cargo.toml

crates/bench/src/bin/seed_stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
