/root/repo/target/debug/deps/ablation_dft_elements-3560445f658ba923.d: crates/bench/src/bin/ablation_dft_elements.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dft_elements-3560445f658ba923.rmeta: crates/bench/src/bin/ablation_dft_elements.rs Cargo.toml

crates/bench/src/bin/ablation_dft_elements.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
