/root/repo/target/debug/deps/shipped_quality-79ac7d26e0bcb534.d: crates/bench/src/bin/shipped_quality.rs Cargo.toml

/root/repo/target/debug/deps/libshipped_quality-79ac7d26e0bcb534.rmeta: crates/bench/src/bin/shipped_quality.rs Cargo.toml

crates/bench/src/bin/shipped_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
