/root/repo/target/debug/deps/properties-9f828a0ec869db16.d: crates/core/../../tests/properties.rs

/root/repo/target/debug/deps/properties-9f828a0ec869db16: crates/core/../../tests/properties.rs

crates/core/../../tests/properties.rs:
