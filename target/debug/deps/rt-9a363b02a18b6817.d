/root/repo/target/debug/deps/rt-9a363b02a18b6817.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/debug/deps/librt-9a363b02a18b6817.rlib: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/debug/deps/librt-9a363b02a18b6817.rmeta: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
