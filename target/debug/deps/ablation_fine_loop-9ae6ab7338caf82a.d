/root/repo/target/debug/deps/ablation_fine_loop-9ae6ab7338caf82a.d: crates/bench/src/bin/ablation_fine_loop.rs

/root/repo/target/debug/deps/ablation_fine_loop-9ae6ab7338caf82a: crates/bench/src/bin/ablation_fine_loop.rs

crates/bench/src/bin/ablation_fine_loop.rs:
