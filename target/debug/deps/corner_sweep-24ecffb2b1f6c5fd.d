/root/repo/target/debug/deps/corner_sweep-24ecffb2b1f6c5fd.d: crates/bench/src/bin/corner_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libcorner_sweep-24ecffb2b1f6c5fd.rmeta: crates/bench/src/bin/corner_sweep.rs Cargo.toml

crates/bench/src/bin/corner_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
