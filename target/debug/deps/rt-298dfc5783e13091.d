/root/repo/target/debug/deps/rt-298dfc5783e13091.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/librt-298dfc5783e13091.rmeta: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
