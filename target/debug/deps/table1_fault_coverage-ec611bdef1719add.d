/root/repo/target/debug/deps/table1_fault_coverage-ec611bdef1719add.d: crates/bench/src/bin/table1_fault_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_fault_coverage-ec611bdef1719add.rmeta: crates/bench/src/bin/table1_fault_coverage.rs Cargo.toml

crates/bench/src/bin/table1_fault_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
