/root/repo/target/debug/deps/paper_claims-c4c409e0e45c2bea.d: crates/core/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-c4c409e0e45c2bea.rmeta: crates/core/../../tests/paper_claims.rs Cargo.toml

crates/core/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
