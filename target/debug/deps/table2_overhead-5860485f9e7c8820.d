/root/repo/target/debug/deps/table2_overhead-5860485f9e7c8820.d: crates/bench/src/bin/table2_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_overhead-5860485f9e7c8820.rmeta: crates/bench/src/bin/table2_overhead.rs Cargo.toml

crates/bench/src/bin/table2_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
