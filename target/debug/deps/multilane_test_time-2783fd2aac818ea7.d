/root/repo/target/debug/deps/multilane_test_time-2783fd2aac818ea7.d: crates/bench/src/bin/multilane_test_time.rs

/root/repo/target/debug/deps/multilane_test_time-2783fd2aac818ea7: crates/bench/src/bin/multilane_test_time.rs

crates/bench/src/bin/multilane_test_time.rs:
