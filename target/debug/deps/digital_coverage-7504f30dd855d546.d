/root/repo/target/debug/deps/digital_coverage-7504f30dd855d546.d: crates/bench/src/bin/digital_coverage.rs

/root/repo/target/debug/deps/digital_coverage-7504f30dd855d546: crates/bench/src/bin/digital_coverage.rs

crates/bench/src/bin/digital_coverage.rs:
