/root/repo/target/debug/deps/properties-821ddc1ad3211f4a.d: crates/core/../../tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-821ddc1ad3211f4a.rmeta: crates/core/../../tests/properties.rs Cargo.toml

crates/core/../../tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
