/root/repo/target/debug/deps/test_program_listing-96fafdd044d83019.d: crates/bench/src/bin/test_program_listing.rs Cargo.toml

/root/repo/target/debug/deps/libtest_program_listing-96fafdd044d83019.rmeta: crates/bench/src/bin/test_program_listing.rs Cargo.toml

crates/bench/src/bin/test_program_listing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
