/root/repo/target/debug/deps/coverage_progression-742dcc8daf03dae4.d: crates/bench/src/bin/coverage_progression.rs

/root/repo/target/debug/deps/coverage_progression-742dcc8daf03dae4: crates/bench/src/bin/coverage_progression.rs

crates/bench/src/bin/coverage_progression.rs:
