/root/repo/target/debug/deps/corner_sweep-85fef1c3129be17a.d: crates/bench/src/bin/corner_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libcorner_sweep-85fef1c3129be17a.rmeta: crates/bench/src/bin/corner_sweep.rs Cargo.toml

crates/bench/src/bin/corner_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
