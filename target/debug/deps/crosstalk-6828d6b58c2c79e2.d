/root/repo/target/debug/deps/crosstalk-6828d6b58c2c79e2.d: crates/bench/src/bin/crosstalk.rs Cargo.toml

/root/repo/target/debug/deps/libcrosstalk-6828d6b58c2c79e2.rmeta: crates/bench/src/bin/crosstalk.rs Cargo.toml

crates/bench/src/bin/crosstalk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
