/root/repo/target/debug/deps/bench-cf1c4738aa465574.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-cf1c4738aa465574.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-cf1c4738aa465574.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
