/root/repo/target/debug/deps/properties_ext-1c6eb7fe80feb51a.d: crates/core/../../tests/properties_ext.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_ext-1c6eb7fe80feb51a.rmeta: crates/core/../../tests/properties_ext.rs Cargo.toml

crates/core/../../tests/properties_ext.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
