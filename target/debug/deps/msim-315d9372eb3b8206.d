/root/repo/target/debug/deps/msim-315d9372eb3b8206.d: crates/msim/src/lib.rs crates/msim/src/blocks/mod.rs crates/msim/src/blocks/bias.rs crates/msim/src/blocks/charge_pump.rs crates/msim/src/blocks/comparator.rs crates/msim/src/blocks/dll.rs crates/msim/src/blocks/vcdl.rs crates/msim/src/effects.rs crates/msim/src/fault.rs crates/msim/src/netlist.rs crates/msim/src/params.rs crates/msim/src/signal.rs crates/msim/src/sim.rs crates/msim/src/units.rs crates/msim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libmsim-315d9372eb3b8206.rmeta: crates/msim/src/lib.rs crates/msim/src/blocks/mod.rs crates/msim/src/blocks/bias.rs crates/msim/src/blocks/charge_pump.rs crates/msim/src/blocks/comparator.rs crates/msim/src/blocks/dll.rs crates/msim/src/blocks/vcdl.rs crates/msim/src/effects.rs crates/msim/src/fault.rs crates/msim/src/netlist.rs crates/msim/src/params.rs crates/msim/src/signal.rs crates/msim/src/sim.rs crates/msim/src/units.rs crates/msim/src/vcd.rs Cargo.toml

crates/msim/src/lib.rs:
crates/msim/src/blocks/mod.rs:
crates/msim/src/blocks/bias.rs:
crates/msim/src/blocks/charge_pump.rs:
crates/msim/src/blocks/comparator.rs:
crates/msim/src/blocks/dll.rs:
crates/msim/src/blocks/vcdl.rs:
crates/msim/src/effects.rs:
crates/msim/src/fault.rs:
crates/msim/src/netlist.rs:
crates/msim/src/params.rs:
crates/msim/src/signal.rs:
crates/msim/src/sim.rs:
crates/msim/src/units.rs:
crates/msim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
