/root/repo/target/debug/deps/seed_stability-af811f5ebf6553a5.d: crates/bench/src/bin/seed_stability.rs Cargo.toml

/root/repo/target/debug/deps/libseed_stability-af811f5ebf6553a5.rmeta: crates/bench/src/bin/seed_stability.rs Cargo.toml

crates/bench/src/bin/seed_stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
