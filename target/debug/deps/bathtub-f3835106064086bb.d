/root/repo/target/debug/deps/bathtub-f3835106064086bb.d: crates/bench/src/bin/bathtub.rs Cargo.toml

/root/repo/target/debug/deps/libbathtub-f3835106064086bb.rmeta: crates/bench/src/bin/bathtub.rs Cargo.toml

crates/bench/src/bin/bathtub.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
