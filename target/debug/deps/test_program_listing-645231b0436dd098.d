/root/repo/target/debug/deps/test_program_listing-645231b0436dd098.d: crates/bench/src/bin/test_program_listing.rs

/root/repo/target/debug/deps/test_program_listing-645231b0436dd098: crates/bench/src/bin/test_program_listing.rs

crates/bench/src/bin/test_program_listing.rs:
