/root/repo/target/debug/deps/fig1_architecture-66d99ce3f40b8b90.d: crates/bench/src/bin/fig1_architecture.rs

/root/repo/target/debug/deps/fig1_architecture-66d99ce3f40b8b90: crates/bench/src/bin/fig1_architecture.rs

crates/bench/src/bin/fig1_architecture.rs:
