/root/repo/target/debug/deps/ablation_fine_loop-f271627d2be44f61.d: crates/bench/src/bin/ablation_fine_loop.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fine_loop-f271627d2be44f61.rmeta: crates/bench/src/bin/ablation_fine_loop.rs Cargo.toml

crates/bench/src/bin/ablation_fine_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
