/root/repo/target/debug/deps/table2_overhead-5b1f038c7875e5d0.d: crates/bench/src/bin/table2_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_overhead-5b1f038c7875e5d0.rmeta: crates/bench/src/bin/table2_overhead.rs Cargo.toml

crates/bench/src/bin/table2_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
