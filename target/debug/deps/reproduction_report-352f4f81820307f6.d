/root/repo/target/debug/deps/reproduction_report-352f4f81820307f6.d: crates/bench/src/bin/reproduction_report.rs

/root/repo/target/debug/deps/reproduction_report-352f4f81820307f6: crates/bench/src/bin/reproduction_report.rs

crates/bench/src/bin/reproduction_report.rs:
