/root/repo/target/debug/deps/bench-a8f5b5e364986836.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-a8f5b5e364986836: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
