/root/repo/target/debug/deps/mismatch_monte_carlo-87de02b5ed953331.d: crates/bench/src/bin/mismatch_monte_carlo.rs Cargo.toml

/root/repo/target/debug/deps/libmismatch_monte_carlo-87de02b5ed953331.rmeta: crates/bench/src/bin/mismatch_monte_carlo.rs Cargo.toml

crates/bench/src/bin/mismatch_monte_carlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
