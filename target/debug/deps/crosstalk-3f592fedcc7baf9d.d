/root/repo/target/debug/deps/crosstalk-3f592fedcc7baf9d.d: crates/bench/src/bin/crosstalk.rs

/root/repo/target/debug/deps/crosstalk-3f592fedcc7baf9d: crates/bench/src/bin/crosstalk.rs

crates/bench/src/bin/crosstalk.rs:
