/root/repo/target/debug/deps/test_tiers-72c400ffbd54e7ca.d: crates/bench/benches/test_tiers.rs Cargo.toml

/root/repo/target/debug/deps/libtest_tiers-72c400ffbd54e7ca.rmeta: crates/bench/benches/test_tiers.rs Cargo.toml

crates/bench/benches/test_tiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
