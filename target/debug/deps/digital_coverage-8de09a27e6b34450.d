/root/repo/target/debug/deps/digital_coverage-8de09a27e6b34450.d: crates/bench/src/bin/digital_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libdigital_coverage-8de09a27e6b34450.rmeta: crates/bench/src/bin/digital_coverage.rs Cargo.toml

crates/bench/src/bin/digital_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
