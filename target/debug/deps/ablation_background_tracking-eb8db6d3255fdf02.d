/root/repo/target/debug/deps/ablation_background_tracking-eb8db6d3255fdf02.d: crates/bench/src/bin/ablation_background_tracking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_background_tracking-eb8db6d3255fdf02.rmeta: crates/bench/src/bin/ablation_background_tracking.rs Cargo.toml

crates/bench/src/bin/ablation_background_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
