/root/repo/target/debug/deps/power_comparison-bacdc7122542485a.d: crates/bench/src/bin/power_comparison.rs

/root/repo/target/debug/deps/power_comparison-bacdc7122542485a: crates/bench/src/bin/power_comparison.rs

crates/bench/src/bin/power_comparison.rs:
