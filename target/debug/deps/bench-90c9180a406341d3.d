/root/repo/target/debug/deps/bench-90c9180a406341d3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-90c9180a406341d3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
