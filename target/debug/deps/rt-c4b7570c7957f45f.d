/root/repo/target/debug/deps/rt-c4b7570c7957f45f.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/librt-c4b7570c7957f45f.rmeta: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
