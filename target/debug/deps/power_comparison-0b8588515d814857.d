/root/repo/target/debug/deps/power_comparison-0b8588515d814857.d: crates/bench/src/bin/power_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libpower_comparison-0b8588515d814857.rmeta: crates/bench/src/bin/power_comparison.rs Cargo.toml

crates/bench/src/bin/power_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
