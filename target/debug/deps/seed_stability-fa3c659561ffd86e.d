/root/repo/target/debug/deps/seed_stability-fa3c659561ffd86e.d: crates/bench/src/bin/seed_stability.rs

/root/repo/target/debug/deps/seed_stability-fa3c659561ffd86e: crates/bench/src/bin/seed_stability.rs

crates/bench/src/bin/seed_stability.rs:
