/root/repo/target/debug/deps/bathtub-346652a4f0d196dc.d: crates/bench/src/bin/bathtub.rs Cargo.toml

/root/repo/target/debug/deps/libbathtub-346652a4f0d196dc.rmeta: crates/bench/src/bin/bathtub.rs Cargo.toml

crates/bench/src/bin/bathtub.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
