/root/repo/target/debug/deps/fig2_lock_acquisition-419cee105cbfe3b7.d: crates/bench/src/bin/fig2_lock_acquisition.rs

/root/repo/target/debug/deps/fig2_lock_acquisition-419cee105cbfe3b7: crates/bench/src/bin/fig2_lock_acquisition.rs

crates/bench/src/bin/fig2_lock_acquisition.rs:
