/root/repo/target/debug/deps/table1_fault_coverage-851e68e4b46c0135.d: crates/bench/src/bin/table1_fault_coverage.rs

/root/repo/target/debug/deps/table1_fault_coverage-851e68e4b46c0135: crates/bench/src/bin/table1_fault_coverage.rs

crates/bench/src/bin/table1_fault_coverage.rs:
