/root/repo/target/debug/deps/test_program_listing-e0471cdc0168c308.d: crates/bench/src/bin/test_program_listing.rs Cargo.toml

/root/repo/target/debug/deps/libtest_program_listing-e0471cdc0168c308.rmeta: crates/bench/src/bin/test_program_listing.rs Cargo.toml

crates/bench/src/bin/test_program_listing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
