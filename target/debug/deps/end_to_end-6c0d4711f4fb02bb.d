/root/repo/target/debug/deps/end_to_end-6c0d4711f4fb02bb.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6c0d4711f4fb02bb: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
