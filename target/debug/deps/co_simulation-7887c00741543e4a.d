/root/repo/target/debug/deps/co_simulation-7887c00741543e4a.d: crates/core/../../tests/co_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libco_simulation-7887c00741543e4a.rmeta: crates/core/../../tests/co_simulation.rs Cargo.toml

crates/core/../../tests/co_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
