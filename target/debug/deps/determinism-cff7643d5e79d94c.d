/root/repo/target/debug/deps/determinism-cff7643d5e79d94c.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-cff7643d5e79d94c: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
