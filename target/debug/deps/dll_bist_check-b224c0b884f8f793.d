/root/repo/target/debug/deps/dll_bist_check-b224c0b884f8f793.d: crates/bench/src/bin/dll_bist_check.rs

/root/repo/target/debug/deps/dll_bist_check-b224c0b884f8f793: crates/bench/src/bin/dll_bist_check.rs

crates/bench/src/bin/dll_bist_check.rs:
