/root/repo/target/debug/deps/mismatch_monte_carlo-afffee5bbfbf5bfd.d: crates/bench/src/bin/mismatch_monte_carlo.rs Cargo.toml

/root/repo/target/debug/deps/libmismatch_monte_carlo-afffee5bbfbf5bfd.rmeta: crates/bench/src/bin/mismatch_monte_carlo.rs Cargo.toml

crates/bench/src/bin/mismatch_monte_carlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
