/root/repo/target/release/examples/eye_margining-6e001f78c7d14cc6.d: crates/core/../../examples/eye_margining.rs

/root/repo/target/release/examples/eye_margining-6e001f78c7d14cc6: crates/core/../../examples/eye_margining.rs

crates/core/../../examples/eye_margining.rs:
