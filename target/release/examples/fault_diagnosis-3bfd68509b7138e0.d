/root/repo/target/release/examples/fault_diagnosis-3bfd68509b7138e0.d: crates/core/../../examples/fault_diagnosis.rs

/root/repo/target/release/examples/fault_diagnosis-3bfd68509b7138e0: crates/core/../../examples/fault_diagnosis.rs

crates/core/../../examples/fault_diagnosis.rs:
