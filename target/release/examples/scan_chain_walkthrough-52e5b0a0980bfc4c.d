/root/repo/target/release/examples/scan_chain_walkthrough-52e5b0a0980bfc4c.d: crates/core/../../examples/scan_chain_walkthrough.rs

/root/repo/target/release/examples/scan_chain_walkthrough-52e5b0a0980bfc4c: crates/core/../../examples/scan_chain_walkthrough.rs

crates/core/../../examples/scan_chain_walkthrough.rs:
