/root/repo/target/release/examples/production_screening-d1edabf09ec7b7d2.d: crates/core/../../examples/production_screening.rs

/root/repo/target/release/examples/production_screening-d1edabf09ec7b7d2: crates/core/../../examples/production_screening.rs

crates/core/../../examples/production_screening.rs:
