/root/repo/target/release/examples/quickstart-caf7951cfee32615.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-caf7951cfee32615: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
