/root/repo/target/release/examples/waveform_debugging-d89298e97c923319.d: crates/core/../../examples/waveform_debugging.rs

/root/repo/target/release/examples/waveform_debugging-d89298e97c923319: crates/core/../../examples/waveform_debugging.rs

crates/core/../../examples/waveform_debugging.rs:
