/root/repo/target/release/deps/digital_coverage-4d3c3eb3d519e991.d: crates/bench/src/bin/digital_coverage.rs

/root/repo/target/release/deps/digital_coverage-4d3c3eb3d519e991: crates/bench/src/bin/digital_coverage.rs

crates/bench/src/bin/digital_coverage.rs:
