/root/repo/target/release/deps/table2_overhead-fa05f64a034d5046.d: crates/bench/src/bin/table2_overhead.rs

/root/repo/target/release/deps/table2_overhead-fa05f64a034d5046: crates/bench/src/bin/table2_overhead.rs

crates/bench/src/bin/table2_overhead.rs:
