/root/repo/target/release/deps/ablation_fine_loop-21c3bbc43c5e5871.d: crates/bench/src/bin/ablation_fine_loop.rs

/root/repo/target/release/deps/ablation_fine_loop-21c3bbc43c5e5871: crates/bench/src/bin/ablation_fine_loop.rs

crates/bench/src/bin/ablation_fine_loop.rs:
