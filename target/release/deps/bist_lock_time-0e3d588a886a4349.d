/root/repo/target/release/deps/bist_lock_time-0e3d588a886a4349.d: crates/bench/src/bin/bist_lock_time.rs

/root/repo/target/release/deps/bist_lock_time-0e3d588a886a4349: crates/bench/src/bin/bist_lock_time.rs

crates/bench/src/bin/bist_lock_time.rs:
