/root/repo/target/release/deps/bathtub-56625ae503e80573.d: crates/bench/src/bin/bathtub.rs

/root/repo/target/release/deps/bathtub-56625ae503e80573: crates/bench/src/bin/bathtub.rs

crates/bench/src/bin/bathtub.rs:
