/root/repo/target/release/deps/power_comparison-0d92daf33b3b7b8c.d: crates/bench/src/bin/power_comparison.rs

/root/repo/target/release/deps/power_comparison-0d92daf33b3b7b8c: crates/bench/src/bin/power_comparison.rs

crates/bench/src/bin/power_comparison.rs:
