/root/repo/target/release/deps/dll_bist_check-379bd7d567661630.d: crates/bench/src/bin/dll_bist_check.rs

/root/repo/target/release/deps/dll_bist_check-379bd7d567661630: crates/bench/src/bin/dll_bist_check.rs

crates/bench/src/bin/dll_bist_check.rs:
