/root/repo/target/release/deps/table1_fault_coverage-c8a2607fe5e4878a.d: crates/bench/src/bin/table1_fault_coverage.rs

/root/repo/target/release/deps/table1_fault_coverage-c8a2607fe5e4878a: crates/bench/src/bin/table1_fault_coverage.rs

crates/bench/src/bin/table1_fault_coverage.rs:
