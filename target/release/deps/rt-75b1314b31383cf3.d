/root/repo/target/release/deps/rt-75b1314b31383cf3.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/release/deps/librt-75b1314b31383cf3.rlib: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/release/deps/librt-75b1314b31383cf3.rmeta: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
