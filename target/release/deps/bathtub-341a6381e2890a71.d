/root/repo/target/release/deps/bathtub-341a6381e2890a71.d: crates/bench/src/bin/bathtub.rs

/root/repo/target/release/deps/bathtub-341a6381e2890a71: crates/bench/src/bin/bathtub.rs

crates/bench/src/bin/bathtub.rs:
