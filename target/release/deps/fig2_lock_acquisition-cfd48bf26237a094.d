/root/repo/target/release/deps/fig2_lock_acquisition-cfd48bf26237a094.d: crates/bench/src/bin/fig2_lock_acquisition.rs

/root/repo/target/release/deps/fig2_lock_acquisition-cfd48bf26237a094: crates/bench/src/bin/fig2_lock_acquisition.rs

crates/bench/src/bin/fig2_lock_acquisition.rs:
