/root/repo/target/release/deps/digital_coverage-b7ae8cbfd5178c9d.d: crates/bench/src/bin/digital_coverage.rs

/root/repo/target/release/deps/digital_coverage-b7ae8cbfd5178c9d: crates/bench/src/bin/digital_coverage.rs

crates/bench/src/bin/digital_coverage.rs:
