/root/repo/target/release/deps/paper_claims-0920af52e36cd637.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-0920af52e36cd637: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
