/root/repo/target/release/deps/ablation_fine_loop-62cef8f67f36238e.d: crates/bench/src/bin/ablation_fine_loop.rs

/root/repo/target/release/deps/ablation_fine_loop-62cef8f67f36238e: crates/bench/src/bin/ablation_fine_loop.rs

crates/bench/src/bin/ablation_fine_loop.rs:
