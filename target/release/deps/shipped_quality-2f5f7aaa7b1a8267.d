/root/repo/target/release/deps/shipped_quality-2f5f7aaa7b1a8267.d: crates/bench/src/bin/shipped_quality.rs

/root/repo/target/release/deps/shipped_quality-2f5f7aaa7b1a8267: crates/bench/src/bin/shipped_quality.rs

crates/bench/src/bin/shipped_quality.rs:
