/root/repo/target/release/deps/test_program_listing-854d3e58e0cf56fd.d: crates/bench/src/bin/test_program_listing.rs

/root/repo/target/release/deps/test_program_listing-854d3e58e0cf56fd: crates/bench/src/bin/test_program_listing.rs

crates/bench/src/bin/test_program_listing.rs:
