/root/repo/target/release/deps/mismatch_monte_carlo-505b002efb9966c3.d: crates/bench/src/bin/mismatch_monte_carlo.rs

/root/repo/target/release/deps/mismatch_monte_carlo-505b002efb9966c3: crates/bench/src/bin/mismatch_monte_carlo.rs

crates/bench/src/bin/mismatch_monte_carlo.rs:
