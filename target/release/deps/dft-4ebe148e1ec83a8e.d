/root/repo/target/release/deps/dft-4ebe148e1ec83a8e.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/architecture.rs crates/core/src/bist.rs crates/core/src/campaign.rs crates/core/src/chain_a.rs crates/core/src/chain_b.rs crates/core/src/dc_test.rs crates/core/src/diagnosis.rs crates/core/src/mismatch.rs crates/core/src/multilane.rs crates/core/src/overhead.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/scan_test.rs crates/core/src/test_program.rs

/root/repo/target/release/deps/libdft-4ebe148e1ec83a8e.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/architecture.rs crates/core/src/bist.rs crates/core/src/campaign.rs crates/core/src/chain_a.rs crates/core/src/chain_b.rs crates/core/src/dc_test.rs crates/core/src/diagnosis.rs crates/core/src/mismatch.rs crates/core/src/multilane.rs crates/core/src/overhead.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/scan_test.rs crates/core/src/test_program.rs

/root/repo/target/release/deps/libdft-4ebe148e1ec83a8e.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/architecture.rs crates/core/src/bist.rs crates/core/src/campaign.rs crates/core/src/chain_a.rs crates/core/src/chain_b.rs crates/core/src/dc_test.rs crates/core/src/diagnosis.rs crates/core/src/mismatch.rs crates/core/src/multilane.rs crates/core/src/overhead.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/scan_test.rs crates/core/src/test_program.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/architecture.rs:
crates/core/src/bist.rs:
crates/core/src/campaign.rs:
crates/core/src/chain_a.rs:
crates/core/src/chain_b.rs:
crates/core/src/dc_test.rs:
crates/core/src/diagnosis.rs:
crates/core/src/mismatch.rs:
crates/core/src/multilane.rs:
crates/core/src/overhead.rs:
crates/core/src/quality.rs:
crates/core/src/report.rs:
crates/core/src/scan_test.rs:
crates/core/src/test_program.rs:
