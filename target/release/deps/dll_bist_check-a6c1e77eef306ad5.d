/root/repo/target/release/deps/dll_bist_check-a6c1e77eef306ad5.d: crates/bench/src/bin/dll_bist_check.rs

/root/repo/target/release/deps/dll_bist_check-a6c1e77eef306ad5: crates/bench/src/bin/dll_bist_check.rs

crates/bench/src/bin/dll_bist_check.rs:
