/root/repo/target/release/deps/multilane_test_time-69d556fa1e17950b.d: crates/bench/src/bin/multilane_test_time.rs

/root/repo/target/release/deps/multilane_test_time-69d556fa1e17950b: crates/bench/src/bin/multilane_test_time.rs

crates/bench/src/bin/multilane_test_time.rs:
