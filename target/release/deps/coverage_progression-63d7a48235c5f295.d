/root/repo/target/release/deps/coverage_progression-63d7a48235c5f295.d: crates/bench/src/bin/coverage_progression.rs

/root/repo/target/release/deps/coverage_progression-63d7a48235c5f295: crates/bench/src/bin/coverage_progression.rs

crates/bench/src/bin/coverage_progression.rs:
