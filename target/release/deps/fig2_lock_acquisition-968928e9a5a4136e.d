/root/repo/target/release/deps/fig2_lock_acquisition-968928e9a5a4136e.d: crates/bench/src/bin/fig2_lock_acquisition.rs

/root/repo/target/release/deps/fig2_lock_acquisition-968928e9a5a4136e: crates/bench/src/bin/fig2_lock_acquisition.rs

crates/bench/src/bin/fig2_lock_acquisition.rs:
