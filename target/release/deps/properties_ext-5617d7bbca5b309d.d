/root/repo/target/release/deps/properties_ext-5617d7bbca5b309d.d: crates/core/../../tests/properties_ext.rs

/root/repo/target/release/deps/properties_ext-5617d7bbca5b309d: crates/core/../../tests/properties_ext.rs

crates/core/../../tests/properties_ext.rs:
