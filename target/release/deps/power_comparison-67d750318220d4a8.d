/root/repo/target/release/deps/power_comparison-67d750318220d4a8.d: crates/bench/src/bin/power_comparison.rs

/root/repo/target/release/deps/power_comparison-67d750318220d4a8: crates/bench/src/bin/power_comparison.rs

crates/bench/src/bin/power_comparison.rs:
