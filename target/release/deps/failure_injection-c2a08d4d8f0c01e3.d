/root/repo/target/release/deps/failure_injection-c2a08d4d8f0c01e3.d: crates/core/../../tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-c2a08d4d8f0c01e3: crates/core/../../tests/failure_injection.rs

crates/core/../../tests/failure_injection.rs:
