/root/repo/target/release/deps/eye_ablation-d342cb1daee0ddde.d: crates/bench/src/bin/eye_ablation.rs

/root/repo/target/release/deps/eye_ablation-d342cb1daee0ddde: crates/bench/src/bin/eye_ablation.rs

crates/bench/src/bin/eye_ablation.rs:
