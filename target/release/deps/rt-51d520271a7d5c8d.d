/root/repo/target/release/deps/rt-51d520271a7d5c8d.d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

/root/repo/target/release/deps/rt-51d520271a7d5c8d: crates/rt/src/lib.rs crates/rt/src/check.rs crates/rt/src/par.rs crates/rt/src/rng.rs crates/rt/src/timing.rs

crates/rt/src/lib.rs:
crates/rt/src/check.rs:
crates/rt/src/par.rs:
crates/rt/src/rng.rs:
crates/rt/src/timing.rs:
