/root/repo/target/release/deps/digital_scan-2bb626603d2d22cf.d: crates/bench/benches/digital_scan.rs

/root/repo/target/release/deps/digital_scan-2bb626603d2d22cf: crates/bench/benches/digital_scan.rs

crates/bench/benches/digital_scan.rs:
