/root/repo/target/release/deps/reproduction_report-2027c2870a1f7ebd.d: crates/bench/src/bin/reproduction_report.rs

/root/repo/target/release/deps/reproduction_report-2027c2870a1f7ebd: crates/bench/src/bin/reproduction_report.rs

crates/bench/src/bin/reproduction_report.rs:
