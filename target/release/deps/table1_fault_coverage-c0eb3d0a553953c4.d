/root/repo/target/release/deps/table1_fault_coverage-c0eb3d0a553953c4.d: crates/bench/src/bin/table1_fault_coverage.rs

/root/repo/target/release/deps/table1_fault_coverage-c0eb3d0a553953c4: crates/bench/src/bin/table1_fault_coverage.rs

crates/bench/src/bin/table1_fault_coverage.rs:
