/root/repo/target/release/deps/fig1_architecture-fddf2143befd4fb3.d: crates/bench/src/bin/fig1_architecture.rs

/root/repo/target/release/deps/fig1_architecture-fddf2143befd4fb3: crates/bench/src/bin/fig1_architecture.rs

crates/bench/src/bin/fig1_architecture.rs:
