/root/repo/target/release/deps/reproduction_report-484cc48774a5e135.d: crates/bench/src/bin/reproduction_report.rs

/root/repo/target/release/deps/reproduction_report-484cc48774a5e135: crates/bench/src/bin/reproduction_report.rs

crates/bench/src/bin/reproduction_report.rs:
