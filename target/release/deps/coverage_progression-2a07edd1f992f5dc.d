/root/repo/target/release/deps/coverage_progression-2a07edd1f992f5dc.d: crates/bench/src/bin/coverage_progression.rs

/root/repo/target/release/deps/coverage_progression-2a07edd1f992f5dc: crates/bench/src/bin/coverage_progression.rs

crates/bench/src/bin/coverage_progression.rs:
