/root/repo/target/release/deps/seed_stability-ccc9c7ca8189ef3d.d: crates/bench/src/bin/seed_stability.rs

/root/repo/target/release/deps/seed_stability-ccc9c7ca8189ef3d: crates/bench/src/bin/seed_stability.rs

crates/bench/src/bin/seed_stability.rs:
