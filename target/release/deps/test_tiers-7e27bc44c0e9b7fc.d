/root/repo/target/release/deps/test_tiers-7e27bc44c0e9b7fc.d: crates/bench/benches/test_tiers.rs

/root/repo/target/release/deps/test_tiers-7e27bc44c0e9b7fc: crates/bench/benches/test_tiers.rs

crates/bench/benches/test_tiers.rs:
