/root/repo/target/release/deps/corner_sweep-089e78a9a4940200.d: crates/bench/src/bin/corner_sweep.rs

/root/repo/target/release/deps/corner_sweep-089e78a9a4940200: crates/bench/src/bin/corner_sweep.rs

crates/bench/src/bin/corner_sweep.rs:
