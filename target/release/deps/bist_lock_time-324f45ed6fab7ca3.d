/root/repo/target/release/deps/bist_lock_time-324f45ed6fab7ca3.d: crates/bench/src/bin/bist_lock_time.rs

/root/repo/target/release/deps/bist_lock_time-324f45ed6fab7ca3: crates/bench/src/bin/bist_lock_time.rs

crates/bench/src/bin/bist_lock_time.rs:
