/root/repo/target/release/deps/bench-a60e2a6452870322.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-a60e2a6452870322: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
