/root/repo/target/release/deps/ablation_background_tracking-0497c0e1a5b4a9ed.d: crates/bench/src/bin/ablation_background_tracking.rs

/root/repo/target/release/deps/ablation_background_tracking-0497c0e1a5b4a9ed: crates/bench/src/bin/ablation_background_tracking.rs

crates/bench/src/bin/ablation_background_tracking.rs:
