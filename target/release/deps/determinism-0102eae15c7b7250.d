/root/repo/target/release/deps/determinism-0102eae15c7b7250.d: crates/core/../../tests/determinism.rs

/root/repo/target/release/deps/determinism-0102eae15c7b7250: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
