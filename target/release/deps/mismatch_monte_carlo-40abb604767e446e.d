/root/repo/target/release/deps/mismatch_monte_carlo-40abb604767e446e.d: crates/bench/src/bin/mismatch_monte_carlo.rs

/root/repo/target/release/deps/mismatch_monte_carlo-40abb604767e446e: crates/bench/src/bin/mismatch_monte_carlo.rs

crates/bench/src/bin/mismatch_monte_carlo.rs:
