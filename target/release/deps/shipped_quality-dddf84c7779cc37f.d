/root/repo/target/release/deps/shipped_quality-dddf84c7779cc37f.d: crates/bench/src/bin/shipped_quality.rs

/root/repo/target/release/deps/shipped_quality-dddf84c7779cc37f: crates/bench/src/bin/shipped_quality.rs

crates/bench/src/bin/shipped_quality.rs:
