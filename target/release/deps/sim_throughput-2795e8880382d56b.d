/root/repo/target/release/deps/sim_throughput-2795e8880382d56b.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-2795e8880382d56b: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
