/root/repo/target/release/deps/bench-212329fddfb19bcf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-212329fddfb19bcf.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-212329fddfb19bcf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
