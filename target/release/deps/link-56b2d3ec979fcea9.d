/root/repo/target/release/deps/link-56b2d3ec979fcea9.d: crates/link/src/lib.rs crates/link/src/ber.rs crates/link/src/channel.rs crates/link/src/config.rs crates/link/src/crossing.rs crates/link/src/dll_bist.rs crates/link/src/eye.rs crates/link/src/netlists.rs crates/link/src/pd.rs crates/link/src/power.rs crates/link/src/prbs.rs crates/link/src/rx.rs crates/link/src/synchronizer.rs crates/link/src/tx.rs

/root/repo/target/release/deps/liblink-56b2d3ec979fcea9.rlib: crates/link/src/lib.rs crates/link/src/ber.rs crates/link/src/channel.rs crates/link/src/config.rs crates/link/src/crossing.rs crates/link/src/dll_bist.rs crates/link/src/eye.rs crates/link/src/netlists.rs crates/link/src/pd.rs crates/link/src/power.rs crates/link/src/prbs.rs crates/link/src/rx.rs crates/link/src/synchronizer.rs crates/link/src/tx.rs

/root/repo/target/release/deps/liblink-56b2d3ec979fcea9.rmeta: crates/link/src/lib.rs crates/link/src/ber.rs crates/link/src/channel.rs crates/link/src/config.rs crates/link/src/crossing.rs crates/link/src/dll_bist.rs crates/link/src/eye.rs crates/link/src/netlists.rs crates/link/src/pd.rs crates/link/src/power.rs crates/link/src/prbs.rs crates/link/src/rx.rs crates/link/src/synchronizer.rs crates/link/src/tx.rs

crates/link/src/lib.rs:
crates/link/src/ber.rs:
crates/link/src/channel.rs:
crates/link/src/config.rs:
crates/link/src/crossing.rs:
crates/link/src/dll_bist.rs:
crates/link/src/eye.rs:
crates/link/src/netlists.rs:
crates/link/src/pd.rs:
crates/link/src/power.rs:
crates/link/src/prbs.rs:
crates/link/src/rx.rs:
crates/link/src/synchronizer.rs:
crates/link/src/tx.rs:
