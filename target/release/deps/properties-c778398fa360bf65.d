/root/repo/target/release/deps/properties-c778398fa360bf65.d: crates/core/../../tests/properties.rs

/root/repo/target/release/deps/properties-c778398fa360bf65: crates/core/../../tests/properties.rs

crates/core/../../tests/properties.rs:
