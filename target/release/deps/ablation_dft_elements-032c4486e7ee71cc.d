/root/repo/target/release/deps/ablation_dft_elements-032c4486e7ee71cc.d: crates/bench/src/bin/ablation_dft_elements.rs

/root/repo/target/release/deps/ablation_dft_elements-032c4486e7ee71cc: crates/bench/src/bin/ablation_dft_elements.rs

crates/bench/src/bin/ablation_dft_elements.rs:
