/root/repo/target/release/deps/end_to_end-e32de57cb949128e.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e32de57cb949128e: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
