/root/repo/target/release/deps/corner_sweep-9e6f32b127ac0599.d: crates/bench/src/bin/corner_sweep.rs

/root/repo/target/release/deps/corner_sweep-9e6f32b127ac0599: crates/bench/src/bin/corner_sweep.rs

crates/bench/src/bin/corner_sweep.rs:
