/root/repo/target/release/deps/ablation_dft_elements-467cc13f2e862991.d: crates/bench/src/bin/ablation_dft_elements.rs

/root/repo/target/release/deps/ablation_dft_elements-467cc13f2e862991: crates/bench/src/bin/ablation_dft_elements.rs

crates/bench/src/bin/ablation_dft_elements.rs:
