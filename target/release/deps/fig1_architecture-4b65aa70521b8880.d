/root/repo/target/release/deps/fig1_architecture-4b65aa70521b8880.d: crates/bench/src/bin/fig1_architecture.rs

/root/repo/target/release/deps/fig1_architecture-4b65aa70521b8880: crates/bench/src/bin/fig1_architecture.rs

crates/bench/src/bin/fig1_architecture.rs:
