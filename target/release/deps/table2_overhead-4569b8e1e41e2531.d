/root/repo/target/release/deps/table2_overhead-4569b8e1e41e2531.d: crates/bench/src/bin/table2_overhead.rs

/root/repo/target/release/deps/table2_overhead-4569b8e1e41e2531: crates/bench/src/bin/table2_overhead.rs

crates/bench/src/bin/table2_overhead.rs:
