/root/repo/target/release/deps/crosstalk-9e2287e8eb51e0fe.d: crates/bench/src/bin/crosstalk.rs

/root/repo/target/release/deps/crosstalk-9e2287e8eb51e0fe: crates/bench/src/bin/crosstalk.rs

crates/bench/src/bin/crosstalk.rs:
