/root/repo/target/release/deps/ablation_background_tracking-a26a7a7c1cc10272.d: crates/bench/src/bin/ablation_background_tracking.rs

/root/repo/target/release/deps/ablation_background_tracking-a26a7a7c1cc10272: crates/bench/src/bin/ablation_background_tracking.rs

crates/bench/src/bin/ablation_background_tracking.rs:
