/root/repo/target/release/deps/eye_ablation-0a0982cccd43de1d.d: crates/bench/src/bin/eye_ablation.rs

/root/repo/target/release/deps/eye_ablation-0a0982cccd43de1d: crates/bench/src/bin/eye_ablation.rs

crates/bench/src/bin/eye_ablation.rs:
