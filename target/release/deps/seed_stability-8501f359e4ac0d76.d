/root/repo/target/release/deps/seed_stability-8501f359e4ac0d76.d: crates/bench/src/bin/seed_stability.rs

/root/repo/target/release/deps/seed_stability-8501f359e4ac0d76: crates/bench/src/bin/seed_stability.rs

crates/bench/src/bin/seed_stability.rs:
