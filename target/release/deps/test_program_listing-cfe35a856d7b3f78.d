/root/repo/target/release/deps/test_program_listing-cfe35a856d7b3f78.d: crates/bench/src/bin/test_program_listing.rs

/root/repo/target/release/deps/test_program_listing-cfe35a856d7b3f78: crates/bench/src/bin/test_program_listing.rs

crates/bench/src/bin/test_program_listing.rs:
