/root/repo/target/release/deps/multilane_test_time-2046b96eb87d25d9.d: crates/bench/src/bin/multilane_test_time.rs

/root/repo/target/release/deps/multilane_test_time-2046b96eb87d25d9: crates/bench/src/bin/multilane_test_time.rs

crates/bench/src/bin/multilane_test_time.rs:
