/root/repo/target/release/deps/co_simulation-1b68fae9228b9de6.d: crates/core/../../tests/co_simulation.rs

/root/repo/target/release/deps/co_simulation-1b68fae9228b9de6: crates/core/../../tests/co_simulation.rs

crates/core/../../tests/co_simulation.rs:
