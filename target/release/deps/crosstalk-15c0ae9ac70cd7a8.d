/root/repo/target/release/deps/crosstalk-15c0ae9ac70cd7a8.d: crates/bench/src/bin/crosstalk.rs

/root/repo/target/release/deps/crosstalk-15c0ae9ac70cd7a8: crates/bench/src/bin/crosstalk.rs

crates/bench/src/bin/crosstalk.rs:
