//! Walkthrough of the paper's §II scan procedures on the *gate-level*
//! scan chains — every step narrated: the two-pass phase-detector test on
//! chain A, then the ring-counter preload/count, all-zero and continuity
//! checks on chain B, and finally the production test program they
//! compile into.
//!
//! ```text
//! cargo run -p dft --example scan_chain_walkthrough
//! ```

use dft::chain_a::ChainA;
use dft::chain_b::ChainB;
use dft::test_program::TestProgram;
use msim::params::DesignParams;

fn main() {
    let p = DesignParams::paper();

    println!("== Scan chain A (data path) ==\n");
    let chain_a = ChainA::new();
    println!(
        "{} flip-flops: TX data, half-cycle stage, 4 FFE-plate probes,\n\
         3 Alexander PD samplers, retimer.\n",
        chain_a.circuit().dff_count()
    );

    println!("step 1: chain continuity (flush pattern)");
    assert!(chain_a.run_continuity_test());
    println!("        -> pattern emerged intact\n");

    println!("step 2: the paper's two-pass phase-detector test");
    let pd = chain_a.run_pd_two_pass_test();
    println!(
        "        pass 1 (latch transparent): UP x{}, DN x{}",
        pd.pass1_up, pd.pass1_dn
    );
    println!(
        "        pass 2 (half-cycle latch) : UP x{}, DN x{}",
        pd.pass2_up, pd.pass2_dn
    );
    assert!(pd.pass());
    println!("        -> both PD decision paths verified\n");

    println!("step 3: end-to-end retimed data check");
    assert!(chain_a.run_datapath_test(true));
    assert!(!chain_a.run_datapath_test(false));
    println!("        -> healthy line propagates, dead line caught\n");

    println!("== Scan chain B (clock control path) ==\n");
    let chain_b = ChainB::new(p.dll_phases);
    println!(
        "{} flip-flops: window captures, FSM state, {}-bit ring counter,\n\
         3-bit lock detector.\n",
        chain_b.circuit().dff_count(),
        p.dll_phases
    );

    println!("step 4: ring-counter preload & count (one-hot rotates both ways)");
    assert!(chain_b.run_preload_and_count_test());
    println!("        -> image rotated up and back, lock detector counted 2\n");

    println!("step 5: all-zero image (no phase selected)");
    assert!(chain_b.run_all_zero_test());
    println!("        -> state persisted; nothing self-activated\n");

    println!("step 6: chain B continuity");
    assert!(chain_b.run_continuity_test());
    println!("        -> pattern emerged intact\n");

    println!("== The production program these steps compile into ==\n");
    let prog = TestProgram::paper(&p);
    for (i, s) in prog.steps().iter().enumerate().take(6) {
        println!("{:>2}. {:<28} {}", i + 1, s.name, s.apply);
    }
    println!(
        "... {} steps total, {:.1} us estimated test time.",
        prog.steps().len(),
        prog.total_duration().us()
    );
}
