//! Production screening: the paper's motivation is deploying low-swing
//! links in *large scale, high volume digital systems* — which demands a
//! test flow. This example simulates a production lot: most dies are
//! healthy, some carry one random structural fault; every die goes through
//! the DC → scan → BIST flow and the lot report shows yield, fault
//! detection per tier and test escapes.
//!
//! ```text
//! cargo run -p dft --example production_screening
//! ```

use dft::architecture::TestableLink;
use dft::bist::Bist;
use dft::dc_test::DcTest;
use dft::scan_test::ScanTest;
use msim::effects::{resolve_effect, AnalogEffect};
use rt::rng::Rng;

const LOT_SIZE: usize = 200;
const DEFECT_RATE: f64 = 0.25; // deliberately high to exercise the flow

fn main() {
    let link = TestableLink::paper();
    let p = link.params().clone();
    let universe = link.fault_universe();
    let dc = DcTest::new(&p);
    let scan = ScanTest::new(&p);
    let bist = Bist::new(&p);
    let mut rng = Rng::seed_from_u64(2016);

    let mut healthy_dies = 0usize;
    let mut caught_dc = 0usize;
    let mut caught_scan = 0usize;
    let mut caught_bist = 0usize;
    let mut escapes = 0usize;
    let mut false_failures = 0usize;

    for die in 0..LOT_SIZE {
        let defect = rng.chance(DEFECT_RATE);
        let effect = if defect {
            let f = universe.faults()[rng.below(universe.len())];
            resolve_effect(&f, &p)
        } else {
            AnalogEffect::None
        };

        // The flow stops at the first failing (cheapest) tier.
        let verdict = if dc.detects(&effect) {
            caught_dc += 1;
            "FAIL @ DC"
        } else if scan.detects(&effect) {
            caught_scan += 1;
            "FAIL @ scan"
        } else if bist.detects(&effect) {
            caught_bist += 1;
            "FAIL @ BIST"
        } else if defect {
            escapes += 1;
            "SHIPPED (escape)"
        } else {
            healthy_dies += 1;
            "SHIPPED (healthy)"
        };
        if !defect && !verdict.starts_with("SHIPPED") {
            false_failures += 1;
        }
        if die < 10 {
            println!("die {die:>3}: defect={defect:<5} -> {verdict}");
        }
    }

    println!(
        "\n=== Lot report ({LOT_SIZE} dies, {:.0} % defect rate) ===",
        DEFECT_RATE * 100.0
    );
    println!("  shipped healthy   : {healthy_dies}");
    println!("  failed at DC      : {caught_dc}");
    println!("  failed at scan    : {caught_scan}");
    println!("  failed at BIST    : {caught_bist}");
    println!("  defective shipped : {escapes}");
    println!("  false failures    : {false_failures}");

    let defective = LOT_SIZE
        - healthy_dies
        - false_failures
        - escapes
        - (LOT_SIZE
            - healthy_dies
            - false_failures
            - escapes
            - caught_dc
            - caught_scan
            - caught_bist);
    let caught = caught_dc + caught_scan + caught_bist;
    println!(
        "  lot fault coverage: {:.1} % ({caught}/{} defective dies caught)",
        100.0 * caught as f64 / (caught + escapes).max(1) as f64,
        caught + escapes
    );
    let _ = defective;

    assert_eq!(false_failures, 0, "healthy dies must never fail");
    assert!(
        caught as f64 / (caught + escapes).max(1) as f64 > 0.85,
        "flow must catch the large majority of defects"
    );
}
