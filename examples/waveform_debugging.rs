//! Waveform debugging tour: export the lock acquisition as a
//! GTKWave-compatible VCD, record the gate-level ring counter's nets, and
//! render the receive eye as ASCII — the three inspection surfaces of the
//! simulator.
//!
//! ```text
//! cargo run -p dft --example waveform_debugging
//! ```

use dsim::blocks::ring_counter::RingCounter;
use dsim::circuit::SimState;
use dsim::waves::WaveRecorder;
use link::config::LinkConfig;
use link::synchronizer::{RunConfig, Synchronizer};
use link::LowSwingLink;
use msim::params::DesignParams;
use msim::sim::Trace;
use rt::rng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Analog: trace the synchronizer and export a VCD.
    let p = DesignParams::paper();
    let mut sync = Synchronizer::new(&p);
    let mut trace = Trace::new(p.ui());
    let rc = RunConfig {
        cycles: 2000,
        ..RunConfig::paper_bist()
    };
    let out = sync.run(&rc, Some(&mut trace));
    let vcd = msim::vcd::to_vcd(&trace, "synchronizer");
    let analog_path = std::env::temp_dir().join("lowswing_lock.vcd");
    std::fs::write(&analog_path, &vcd)?;
    println!(
        "analog VCD : {} ({} bytes, locked = {})",
        analog_path.display(),
        vcd.len(),
        out.locked
    );

    // 2. Digital: record the ring counter rotating and export a VCD.
    let ring = RingCounter::new(10);
    let mut rec = WaveRecorder::new(ring.circuit(), ring.q());
    let mut s = SimState::for_circuit(ring.circuit());
    ring.preload(&mut s, Some(0));
    ring.set_controls(&mut s, true, true);
    for _ in 0..25 {
        ring.circuit().tick(&mut s);
        rec.sample(&s);
    }
    let dvcd = rec.to_vcd("ring_counter", p.ui().ps().round() as u64 * 16);
    let digital_path = std::env::temp_dir().join("lowswing_ring.vcd");
    std::fs::write(&digital_path, &dvcd)?;
    println!(
        "digital VCD: {} ({} bytes, one-hot walked 25 steps)",
        digital_path.display(),
        dvcd.len()
    );

    // 3. The eye, as ASCII art.
    let mut link = LowSwingLink::new(LinkConfig::paper())?;
    let mut rng = Rng::seed_from_u64(4);
    let bits: Vec<bool> = (0..512).map(|_| rng.next_bool()).collect();
    let eye = link.eye(&bits);
    let (phase, opening) = eye.best();
    println!(
        "\nreceive eye ({:.1} mV worst-case opening at phase bin {phase}):\n",
        opening.mv()
    );
    print!("{}", eye.render_ascii(12));
    Ok(())
}
