//! Quickstart: build the paper's testable low-swing link, verify a healthy
//! die passes all three test tiers, then inject one structural fault and
//! watch the tiers catch it.
//!
//! ```text
//! cargo run -p dft --example quickstart
//! ```

use dft::architecture::TestableLink;
use dft::bist::Bist;
use dft::dc_test::DcTest;
use dft::scan_test::ScanTest;
use msim::effects::resolve_effect;
use msim::fault::{FaultKind, MosFault};

fn main() {
    // 1. The design: the paper's UMC-130nm-class design point.
    let link = TestableLink::paper();
    let p = link.params().clone();
    println!(
        "Testable low-swing link: {} data rate, {} swing, {} structural faults\n",
        p.data_rate,
        p.swing,
        link.fault_universe().len()
    );

    // 2. The three test tiers.
    let dc = DcTest::new(&p);
    let scan = ScanTest::new(&p);
    let bist = Bist::new(&p);

    // 3. A healthy die passes everything.
    let healthy = msim::effects::AnalogEffect::None;
    assert!(!dc.detects(&healthy) && !scan.detects(&healthy) && !bist.detects(&healthy));
    println!("healthy die: DC pass, scan pass, BIST pass ✓\n");

    // 4. Inject the paper's flagship masked fault: a drain-source short on
    //    a charge-pump current source.
    let fault = link
        .fault_universe()
        .iter()
        .find(|f| {
            f.block == msim::netlist::BlockKind::WeakChargePump
                && f.role == msim::netlist::DeviceRole::CpSourceP
                && f.kind == FaultKind::Mos(MosFault::DrainSourceShort)
        })
        .copied()
        .expect("fault exists in the universe");
    let effect = resolve_effect(&fault, &p);
    println!("injected: {fault}");
    println!("behavioral effect: {effect}\n");

    // 5. Run the tiers: DC blind, scan masked, BIST catches it.
    println!("DC test   : {}", verdict(dc.detects(&effect)));
    println!(
        "scan test : {} (current sources biased as switches)",
        verdict(scan.detects(&effect))
    );
    let v = bist.execute(&effect);
    println!(
        "BIST      : {} (Vp flagged by the 150 mV CP-BIST window: {})",
        verdict(!v.pass()),
        v.vp_flagged
    );
    assert!(!dc.detects(&effect));
    assert!(!scan.detects(&effect));
    assert!(!v.pass());
    println!("\nExactly the paper's narrative: masked in scan, caught at speed.");
}

fn verdict(detected: bool) -> &'static str {
    if detected {
        "DETECTED"
    } else {
        "escaped"
    }
}
