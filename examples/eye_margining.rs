//! Eye margining: sweep the data rate on the paper's RC-dominated wire to
//! find the maximum rate at which the equalized link keeps an open eye,
//! and compare against the unequalized driver — the engineering argument
//! for the capacitively coupled transmitter of Fig. 3.
//!
//! ```text
//! cargo run -p dft --example eye_margining
//! ```

use link::config::LinkConfig;
use link::LowSwingLink;
use msim::units::Hertz;
use rt::rng::Rng;

fn opening_at(rate_gbps: f64, boost: f64, bits: &[bool]) -> f64 {
    let mut cfg = LinkConfig::paper();
    cfg.params.data_rate = Hertz::from_ghz(rate_gbps);
    cfg.ffe_boost = boost;
    let mut link = LowSwingLink::new(cfg).expect("valid config");
    link.eye(bits).best().1.mv()
}

fn main() {
    let mut rng = Rng::seed_from_u64(9);
    let bits: Vec<bool> = (0..512).map(|_| rng.next_bool()).collect();

    println!("=== Eye opening vs data rate on the 2 kΩ / 1 pF wire ===\n");
    println!(
        "{:>10}  {:>14}  {:>14}",
        "rate", "unequalized", "FFE (boost 2)"
    );
    let mut max_plain = 0.0f64;
    let mut max_eq = 0.0f64;
    for rate in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let plain = opening_at(rate, 0.0, &bits);
        let eq = opening_at(rate, 2.0, &bits);
        if plain > 5.0 {
            max_plain = rate;
        }
        if eq > 5.0 {
            max_eq = rate;
        }
        let marker = if (rate - 2.5).abs() < 1e-9 {
            " <- paper"
        } else {
            ""
        };
        println!("{rate:>7} Gb/s  {plain:>11.1} mV  {eq:>11.1} mV{marker}");
    }

    println!(
        "\nMax usable rate (>5 mV worst-case eye): {max_plain} Gb/s plain vs {max_eq} Gb/s equalized."
    );
    assert!(
        max_eq > max_plain,
        "the FFE must extend the usable data rate"
    );
    assert!(
        opening_at(2.5, 2.0, &bits) > 5.0,
        "the paper's 2.5 Gb/s point must be usable with equalization"
    );
    assert!(
        opening_at(2.5, 0.0, &bits) < 5.0,
        "without equalization 2.5 Gb/s should not be usable on this wire"
    );
    println!("The repeaterless link owes its 2.5 Gb/s operating point to the FFE.");
}
