//! Fault diagnosis: beyond pass/fail, the tier *signature* of a failing
//! die narrows the defect down to a circuit region — useful for yield
//! learning. Builds the signature dictionary from the fault universe with
//! [`dft::diagnosis`] and diagnoses a few "returned" dies.
//!
//! ```text
//! cargo run -p dft --example fault_diagnosis
//! ```

use dft::campaign::FaultCampaign;
use dft::diagnosis::{Signature, SignatureDictionary};
use msim::netlist::BlockKind;
use msim::params::DesignParams;

fn main() {
    let result = FaultCampaign::new(&DesignParams::paper()).run();
    let dict = SignatureDictionary::from_campaign(&result);

    println!("=== Tier-signature dictionary (diagnosis resolution) ===\n");
    for sig in Signature::ALL {
        if !sig.any() {
            continue;
        }
        let d = dict.diagnose(sig);
        if d.candidates.is_empty() {
            continue;
        }
        let total: usize = d.candidates.iter().map(|(_, n)| n).sum();
        println!("{sig:<14} {total:>3} faults:");
        for (block, n) in &d.candidates {
            println!("    {:<22} {n}", block.label());
        }
    }
    println!(
        "\nmean diagnostic resolution: {:.1} candidate blocks per signature",
        dict.mean_resolution()
    );

    println!("\n=== Diagnosing returned dies ===\n");
    for sig in [
        Signature {
            dc: false,
            scan: false,
            bist: true,
        },
        Signature {
            dc: false,
            scan: true,
            bist: false,
        },
        Signature {
            dc: true,
            scan: true,
            bist: true,
        },
    ] {
        let d = dict.diagnose(sig);
        match d.most_likely() {
            Some(block) => println!(
                "die fails [{sig}] -> {} candidate blocks, most likely: {}",
                d.candidates.len(),
                block.label()
            ),
            None => println!("die fails [{sig}] -> no fault produces this signature"),
        }
    }

    // The BIST-only signature must point at the clock recovery circuitry —
    // the region the paper's scan conversion cannot reach.
    let bist_only = dict.diagnose(Signature {
        dc: false,
        scan: false,
        bist: true,
    });
    for (block, _) in &bist_only.candidates {
        assert!(
            matches!(
                block,
                BlockKind::Vcdl
                    | BlockKind::WeakChargePump
                    | BlockKind::StrongChargePump
                    | BlockKind::WindowComparator
            ),
            "unexpected BIST-only block {block}"
        );
    }
    println!("\nBIST-only failures localize to the clock-recovery analog — the");
    println!("region the paper's scan conversion cannot reach.");
}
